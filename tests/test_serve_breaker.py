"""Circuit breaker state machine (repro.serve.breaker).

Driven entirely through a manual clock, so every cooldown transition
is deterministic: CLOSED opens after K *consecutive* failures, OPEN
half-opens after the cooldown, HALF_OPEN closes on a probe success and
re-opens on a probe failure, and the probe quota bounds concurrent
probes.
"""

from __future__ import annotations

import threading

import pytest

from repro.serve import BreakerState, CircuitBreaker


def make(threshold: int = 3, cooldown: float = 5.0, quota: int = 1):
    clk = [0.0]
    b = CircuitBreaker(failure_threshold=threshold, cooldown_s=cooldown,
                       probe_quota=quota, clock=lambda: clk[0])
    return b, clk


class TestClosedToOpen:
    def test_starts_closed_and_allows(self):
        b, _ = make()
        assert b.state == BreakerState.CLOSED
        assert b.allow()

    def test_opens_after_threshold_consecutive_failures(self):
        b, _ = make(threshold=3)
        b.record_failure("boom")
        b.record_failure("boom")
        assert b.state == BreakerState.CLOSED
        b.record_failure("boom")
        assert b.state == BreakerState.OPEN
        assert not b.allow()

    def test_success_resets_the_consecutive_count(self):
        b, _ = make(threshold=2)
        b.record_failure("a")
        b.record_success()
        b.record_failure("b")
        assert b.state == BreakerState.CLOSED  # never 2 in a row

    def test_open_records_transition_with_reason(self):
        b, _ = make(threshold=1)
        b.record_failure("worker died")
        (t,) = b.transitions
        assert t["from"] == BreakerState.CLOSED
        assert t["to"] == BreakerState.OPEN
        assert "worker died" in t["reason"]


class TestHalfOpenCycle:
    def test_half_opens_after_cooldown(self):
        b, clk = make(threshold=1, cooldown=5.0)
        b.record_failure("x")
        assert not b.allow()
        clk[0] = 4.9
        assert b.state == BreakerState.OPEN
        clk[0] = 5.0
        assert b.state == BreakerState.HALF_OPEN

    def test_probe_success_closes(self):
        b, clk = make(threshold=1)
        b.record_failure("x")
        clk[0] = 6.0
        assert b.allow()  # the probe
        b.record_success()
        assert b.state == BreakerState.CLOSED
        assert b.allow()

    def test_probe_failure_reopens_immediately(self):
        b, clk = make(threshold=3)
        for _ in range(3):
            b.record_failure("x")
        clk[0] = 6.0
        assert b.allow()
        b.record_failure("probe died")
        assert b.state == BreakerState.OPEN
        # a fresh cooldown applies from the re-open
        clk[0] = 10.9
        assert not b.allow()
        clk[0] = 11.0
        assert b.allow()

    def test_probe_quota_bounds_concurrent_probes(self):
        b, clk = make(threshold=1, quota=2)
        b.record_failure("x")
        clk[0] = 6.0
        assert b.allow()
        assert b.allow()
        assert not b.allow()  # quota exhausted until a probe reports

    def test_full_lifecycle_transition_trail(self):
        b, clk = make(threshold=1)
        b.record_failure("x")
        clk[0] = 6.0
        assert b.allow()
        b.record_success()
        trail = [(t["from"], t["to"]) for t in b.transitions]
        assert trail == [
            (BreakerState.CLOSED, BreakerState.OPEN),
            (BreakerState.OPEN, BreakerState.HALF_OPEN),
            (BreakerState.HALF_OPEN, BreakerState.CLOSED),
        ]


class TestStatsAndValidation:
    def test_stats_counts_transitions(self):
        b, clk = make(threshold=1)
        b.record_failure("x")
        clk[0] = 6.0
        b.allow()
        b.record_success()
        s = b.stats()
        assert s["state"] == BreakerState.CLOSED
        assert s["opens"] == 1 and s["half_opens"] == 1 and s["closes"] == 1
        assert s["failure_threshold"] == 1

    @pytest.mark.parametrize("kwargs", [
        {"failure_threshold": 0},
        {"cooldown_s": 0.0},
        {"probe_quota": 0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)

    def test_thread_safety_no_lost_failures(self):
        # N threads each record one failure; the breaker must have
        # counted them all (opens exactly once, state is OPEN)
        b, _ = make(threshold=8, cooldown=100.0)
        threads = [threading.Thread(target=b.record_failure, args=("t",))
                   for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert b.state == BreakerState.OPEN
        assert b.stats()["consecutive_failures"] == 8
