"""GlobalStealBoard edge cases (Sec. V-B board semantics).

Covers the corners the kernel path rarely hits: takes on an empty or
already-drained board, the own-block exclusion in the push-target scan,
idle bookkeeping after a block-wide clear, and work conservation when
the fault injector drops a push message in flight.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.stack import Frame, StolenWork
from repro.core.stealing import GlobalStealBoard, PendingWork
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.faults.recovery import run_with_recovery
from repro.graph.generators import rmat
from repro.pattern.motifs import QUERIES
from repro.virtgpu.device import DeviceConfig


def board(num_blocks: int = 3, warps: int = 2) -> GlobalStealBoard:
    return GlobalStealBoard(num_blocks=num_blocks, warps_per_block=warps)


def some_work(elems: int = 4) -> StolenWork:
    frame = Frame(level=0,
                  slot_vertices=np.asarray([-1], dtype=np.int64),
                  cand=[np.arange(elems, dtype=np.int64)])
    return StolenWork(frames=[frame], copied_elems=elems)


class DropFirst:
    """Injector stub: drops the first N push messages, then delivers."""

    def __init__(self, n: int = 1) -> None:
        self.n = n

    def drop_steal_message(self) -> bool:
        if self.n > 0:
            self.n -= 1
            return True
        return False


# -- take on empty / drained -----------------------------------------------


def test_take_on_empty_board_returns_none():
    b = board()
    assert b.take(0) is None
    assert not b.has_pending


def test_take_drains_the_slot():
    b = board()
    assert b.deposit(1, some_work(), pusher_clock=5.0, pusher_warp=0,
                     pusher_block=0)
    pw = b.take(1)
    assert isinstance(pw, PendingWork)
    assert pw.pusher_clock == 5.0 and pw.pusher_warp == 0 and pw.pusher_block == 0
    assert b.take(1) is None  # drained: a second take must not re-deliver
    assert not b.has_pending


def test_double_deposit_into_occupied_slot_raises():
    b = board()
    assert b.deposit(1, some_work(), pusher_clock=1.0, pusher_warp=0)
    with pytest.raises(ValueError):
        b.deposit(1, some_work(), pusher_clock=2.0, pusher_warp=1)


# -- find_idle_block --------------------------------------------------------


def test_find_idle_block_excludes_own_block():
    b = board(num_blocks=2)
    for w in range(b.warps_per_block):
        b.mark_idle(0, w)
    assert b.block_fully_idle(0)
    # block 0 is the only fully idle block, but it is the donor's own
    assert b.find_idle_block(exclude_block=0) is None
    assert b.find_idle_block(exclude_block=1) == 0


def test_find_idle_block_needs_full_idleness_and_empty_slot():
    b = board(num_blocks=3)
    b.mark_idle(1, 0)  # one of two warps idle: not a push target yet
    assert b.find_idle_block(exclude_block=0) is None
    b.mark_idle(1, 1)
    assert b.find_idle_block(exclude_block=0) == 1
    assert b.deposit(1, some_work(), pusher_clock=1.0, pusher_warp=0)
    # slot occupied: the scan must skip it even though the block is idle
    assert b.find_idle_block(exclude_block=0) is None
    for w in range(2):
        b.mark_idle(2, w)
    assert b.find_idle_block(exclude_block=0) == 2


# -- idle bookkeeping -------------------------------------------------------


def test_clear_idle_with_none_clears_the_whole_block():
    b = board(num_blocks=2)
    b.mark_idle(0, 0)
    b.mark_idle(0, 1)
    b.mark_idle(1, 0)
    assert b.num_idle_warps == 3
    b.clear_idle(0, warp_id=None)
    assert not b.block_fully_idle(0)
    assert b.num_idle_warps == 1  # the other block's bookkeeping survives
    b.clear_idle(1, warp_id=0)
    assert b.num_idle_warps == 0


def test_clear_idle_of_unknown_warp_is_a_noop():
    b = board()
    b.mark_idle(0, 0)
    b.clear_idle(0, warp_id=7)  # never marked: discard, not KeyError
    assert b.num_idle_warps == 1


# -- deposit-after-loss conservation ---------------------------------------


def test_deposit_after_loss_keeps_slot_empty_and_counts_the_loss():
    b = board()
    b.injector = DropFirst(1)
    assert b.deposit(1, some_work(), pusher_clock=1.0, pusher_warp=0) is False
    assert b.num_lost_messages == 1
    assert not b.has_pending and b.slots[1] is None
    # the retry after the loss lands normally
    assert b.deposit(1, some_work(), pusher_clock=2.0, pusher_warp=0) is True
    assert b.has_pending
    assert b.take(1).pusher_clock == 2.0


def test_injected_steal_loss_conserves_the_count_end_to_end():
    """A dropped push message means the donor re-absorbs the divided
    work — the match count must equal the loss-free run exactly."""
    g = rmat(7, 4, seed=5)
    cfg = EngineConfig(device=DeviceConfig(num_blocks=3, warps_per_block=1),
                       chunk_size=1, local_steal=False, sanitize=True)
    clean = run_with_recovery(g, QUERIES["q2"], cfg)
    fp = FaultPlan(events=(
        FaultEvent(FaultKind.STEAL_LOSS, device=0, attempt=0, count=2),
    ))
    lossy = run_with_recovery(g, QUERIES["q2"], cfg, fault_plan=fp)
    assert lossy.countable
    assert lossy.matches == clean.matches
