"""Batch-deadline fairness + bounded pool registry (PR 8 satellites).

A shard that exceeds the batch deadline must surface as an individual
``TIMEOUT`` — without smearing TIMEOUT over shards that already
completed — and the persistent pool registry must stay bounded so a
long-lived service never leaks worker processes.
"""

from __future__ import annotations

import os

import pytest

from repro.core.config import EngineConfig
from repro.core.counters import RunStatus
from repro.core.engine import STMatchEngine
from repro.core.multi_gpu import run_multi_gpu
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.parallel import (
    POOL_REGISTRY_MAX,
    ShardSpec,
    is_pool_infra_failure,
    pool_stats,
    run_shards,
    shutdown_pools,
)
from repro.pattern import QUERIES
from tests import oracle


@pytest.fixture(scope="module", autouse=True)
def _controlled_backend():
    """Executors are set explicitly below: neutralize CI-matrix env
    overrides for this module, and drop the pools afterwards."""
    saved = {k: os.environ.pop(k, None)
             for k in ("REPRO_EXECUTOR", "REPRO_NUM_WORKERS")}
    yield
    for k, v in saved.items():
        if v is not None:
            os.environ[k] = v
    shutdown_pools()


@pytest.fixture(scope="module")
def workload():
    graph = oracle.corpus_graphs()["sparse"]
    plan = STMatchEngine(graph, EngineConfig()).plan(QUERIES["q1"])
    return graph, plan


def _specs(n: int) -> list[ShardSpec]:
    return [ShardSpec(index=d, device_id=d, root_partition=(d, n))
            for d in range(n)]


class TestDeadlineFairness:
    def test_stalled_shard_times_out_alone(self, workload):
        """One deliberately stalled shard trips the deadline; shards
        that completed before it keep their real results."""
        graph, plan = workload
        stall = FaultPlan(events=(
            FaultEvent(FaultKind.WORKER_STALL, device=2, stall_s=30.0),))
        results = run_shards(graph, plan, EngineConfig(), _specs(3),
                             num_workers=3, fault_plan=stall, timeout_s=5.0)
        assert results[2].status == RunStatus.TIMEOUT
        assert "shard 2" in results[2].detail
        assert is_pool_infra_failure(results[2])
        # fairness: the fast shards are NOT smeared with the timeout
        for d in (0, 1):
            assert results[d].status == RunStatus.OK
            assert results[d].countable

    def test_timeout_is_not_failed(self, workload):
        """The two pool-infrastructure outcomes stay distinguishable:
        a deadline trip is TIMEOUT, never FAILED."""
        graph, plan = workload
        results = run_shards(graph, plan, EngineConfig(), _specs(2),
                             num_workers=2, timeout_s=1e-9)
        assert all(r.status == RunStatus.TIMEOUT for r in results)
        assert all(not r.countable for r in results)
        assert all(is_pool_infra_failure(r) for r in results)

    def test_serial_executor_ignores_stalls(self, workload):
        """WORKER_STALL is a process-backend fault: the in-process
        fallback has no worker to stall and runs clean."""
        graph, plan = workload
        stall = FaultPlan(events=(
            FaultEvent(FaultKind.WORKER_STALL, device=0, stall_s=30.0),))
        results = run_shards(graph, plan, EngineConfig(),
                             [ShardSpec(index=0, device_id=0)],
                             num_workers=1, fault_plan=stall, timeout_s=5.0)
        assert results[0].status == RunStatus.OK

    def test_stall_event_validation(self):
        with pytest.raises(ValueError, match="stall_s"):
            FaultEvent(FaultKind.WORKER_STALL, device=0)
        with pytest.raises(ValueError, match="stall_s"):
            FaultEvent(FaultKind.WORKER_STALL, device=0, stall_s=0.0)
        with pytest.raises(ValueError, match="device"):
            FaultEvent(FaultKind.WORKER_STALL, stall_s=1.0)

    def test_forced_pool_execution_single_shard(self, workload):
        """in_process_fallback=False routes even a single shard through
        the pool (the serve layer needs deadlines to apply there too)."""
        graph, plan = workload
        results = run_shards(graph, plan, EngineConfig(),
                             [ShardSpec(index=0, device_id=0)],
                             num_workers=2, timeout_s=1e-9,
                             in_process_fallback=False)
        assert results[0].status == RunStatus.TIMEOUT

    def test_forced_pool_keeps_full_worker_complement(self, workload):
        """A service request carries one shard but shares the pool with
        concurrent requests: with the fallback disabled the pool is
        sized by num_workers, not clamped to len(specs) — otherwise
        independent requests would serialize on a one-worker pool."""
        graph, plan = workload
        shutdown_pools()
        results = run_shards(graph, plan, EngineConfig(),
                             [ShardSpec(index=0, device_id=0)],
                             num_workers=3, in_process_fallback=False)
        assert results[0].status == RunStatus.OK
        assert pool_stats()["worker_counts"] == [3]
        # the one-shot batch path still right-sizes to the work on hand
        run_shards(graph, plan, EngineConfig(), _specs(2), num_workers=4)
        assert 2 in pool_stats()["worker_counts"]
        shutdown_pools()


class TestPoolRegistry:
    def test_registry_is_bounded_lru(self, workload):
        """Cycling through more worker counts than POOL_REGISTRY_MAX
        evicts (and shuts down) the least-recently-used pool."""
        graph, plan = workload
        shutdown_pools()
        before = pool_stats()["evictions"]
        counts = list(range(2, 2 + POOL_REGISTRY_MAX + 2))
        for n in counts:
            run_shards(graph, plan, EngineConfig(), _specs(n), num_workers=n)
        stats = pool_stats()
        assert stats["live_pools"] <= POOL_REGISTRY_MAX
        assert stats["evictions"] >= before + 2
        # the survivors are the most recently used worker counts
        assert stats["worker_counts"] == counts[-POOL_REGISTRY_MAX:]
        shutdown_pools()

    def test_pool_stats_shape(self):
        shutdown_pools()
        stats = pool_stats()
        assert stats["live_pools"] == 0
        assert stats["worker_counts"] == []
        assert stats["capacity"] == POOL_REGISTRY_MAX
        assert stats["evictions"] >= 0
        assert stats["discards"] >= 0

    def test_discard_counter_increments_on_poisoned_pool(self, workload):
        """A timed-out batch discards its poisoned pool and counts it."""
        graph, plan = workload
        shutdown_pools()
        before = pool_stats()["discards"]
        run_shards(graph, plan, EngineConfig(), _specs(2),
                   num_workers=2, timeout_s=1e-9)
        assert pool_stats()["discards"] == before + 1
        shutdown_pools()

    def test_eviction_keeps_results_correct(self, workload):
        """Evicting a pool mid-sequence never corrupts results: counts
        from the re-created pool equal the serial ones."""
        graph, plan = workload
        serial = run_shards(graph, plan, EngineConfig(),
                            [ShardSpec(index=0, device_id=0)], num_workers=1)
        shutdown_pools()
        for n in range(2, 2 + POOL_REGISTRY_MAX + 1):
            run_shards(graph, plan, EngineConfig(), _specs(2), num_workers=n)
        again = run_shards(graph, plan, EngineConfig(), _specs(2),
                           num_workers=2)
        assert sum(r.matches for r in again) == serial[0].matches
        shutdown_pools()


def test_multi_gpu_requeues_timed_out_shard(workload):
    """run_multi_gpu treats a TIMEOUT shard like a FAILED one: lost to
    pool infrastructure, re-queued onto the survivors."""
    graph, _ = workload
    query = QUERIES["q1"]
    baseline = run_multi_gpu(graph, query, 3, EngineConfig())
    stall = FaultPlan(events=(
        FaultEvent(FaultKind.WORKER_STALL, device=1, stall_s=30.0),))
    res = run_multi_gpu(
        graph, query, 3,
        EngineConfig(executor="process", num_workers=3, worker_timeout_s=5.0),
        fault_plan=stall)
    assert res.matches == baseline.matches
    assert res.num_requeued == 1
