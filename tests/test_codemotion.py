"""Unit tests for code-motion analysis and the set-dependence graph."""

import numpy as np
import pytest

from repro.codemotion import (
    BaseKind,
    OpKind,
    SetOp,
    SetProgram,
    SetRecipe,
    backward_ops,
    motioned_program,
    naive_program,
    shared_memory_footprint,
    split_labeled_program,
)
from repro.pattern import QueryGraph, get_query


def fig2_query() -> QueryGraph:
    """The paper's Fig. 2 example: u0 adjacent to u1,u2,u3; u1-u3; u2-u3."""
    return QueryGraph.from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 3), (2, 3)])


class TestBackwardOps:
    def test_level0_empty(self):
        assert backward_ops(get_query("q8"), 0, False) == []

    def test_edge_induced_intersections_only(self):
        q = fig2_query()
        ops = backward_ops(q, 3, vertex_induced=False)
        assert all(op.kind is OpKind.INTERSECT for op in ops)
        assert [op.position for op in ops] == [0, 1, 2]

    def test_vertex_induced_adds_differences(self):
        q = fig2_query()
        # level 2 (u2): neighbor of u0, NOT neighbor of u1
        ops = backward_ops(q, 2, vertex_induced=True)
        kinds = {(op.position, op.kind) for op in ops}
        assert (0, OpKind.INTERSECT) in kinds
        assert (1, OpKind.DIFFERENCE) in kinds

    def test_base_is_intersection(self):
        q = fig2_query()
        ops = backward_ops(q, 2, vertex_induced=True)
        assert ops[0].kind is OpKind.INTERSECT

    def test_disconnected_level_raises(self):
        # force a bad "order" by querying a vertex with no backward edges
        q = QueryGraph.from_edges(3, [(0, 2), (1, 2)])
        with pytest.raises(ValueError):
            backward_ops(q, 1, False)  # vertex 1 not adjacent to vertex 0


class TestPrograms:
    @pytest.mark.parametrize("name", ["q1", "q5", "q7", "q8", "q13", "q16"])
    @pytest.mark.parametrize("vi", [False, True])
    def test_programs_validate(self, name, vi):
        q = get_query(name)
        naive_program(q, vi).validate()
        motioned_program(q, vi).validate()

    def test_naive_one_set_per_level(self):
        q = get_query("q8")
        p = naive_program(q)
        assert p.num_sets == q.size

    def test_motioned_single_op(self):
        for name in ["q1", "q5", "q8", "q13"]:
            p = motioned_program(get_query(name), vertex_induced=True)
            assert p.is_single_op()

    def test_naive_clique_has_long_chains(self):
        p = naive_program(get_query("q8"))
        # last level: base N(0) plus 3 further intersections
        assert p.max_chain_length == 3

    def test_motion_dedups_prefixes_for_clique(self):
        # clique chains share all prefixes: sets = 1 (ALL) + k-1 prefixes
        q = get_query("q8")
        p = motioned_program(q)
        assert p.num_sets == q.size

    def test_motion_lifts_invariants(self):
        # Fig. 2 example: candidate set of the last level must be
        # computable before the last level (the lifted N(v0)∩N(v1)∩N(v2)
        # chain shares its prefix with earlier sets)
        q = fig2_query()
        p = motioned_program(q)
        lifted = [
            r for r in p.recipes
            if r.is_candidate_for >= 0 and r.level < r.is_candidate_for
        ]
        assert lifted, "code motion should lift at least one candidate set"

    def test_num_sets_bounded_for_paper_queries(self):
        # Sec. VIII-A: NUM_SETS <= 15 for queries of up to 7 nodes
        for i in range(1, 25):
            p = motioned_program(get_query(f"q{i}"), vertex_induced=False)
            assert p.num_sets <= 15, f"q{i} has {p.num_sets} sets"

    def test_consumers(self):
        p = motioned_program(get_query("q8"))
        # in a clique chain every prefix feeds the next
        for sid, r in enumerate(p.recipes):
            if r.base is BaseKind.REF:
                assert sid in p.consumers(r.base_arg)


class TestCompactEncoding:
    def test_roundtrip_fields(self):
        p = motioned_program(get_query("q8"))
        c = p.to_compact()
        assert c.row_ptr[-1] == p.num_sets
        assert c.set_ops.shape == (p.num_sets, 4)

    def test_edge_induced_is_pure_paper_triple(self):
        # edge-induced programs never need the operand-position
        # extension: every op combines with N(v_{l-1})
        for name in ["q1", "q5", "q8", "q13", "q16", "q24"]:
            p = motioned_program(get_query(name), vertex_induced=False)
            c = p.to_compact()
            for slot in range(c.num_sets):
                _, _, dep, operand_pos = c.set_ops[slot]
                if dep >= 0 and operand_pos != -1:  # a real op (not
                    # universe/copy/alias)
                    assert operand_pos == c.level_of_slot(slot) - 1

    def test_tens_of_bytes(self):
        # the paper stores the two arrays in shared memory: "tens of bytes"
        for name in ["q8", "q16", "q24", "q13"]:
            c = motioned_program(get_query(name)).to_compact()
            assert c.nbytes <= 256

    def test_naive_rejected(self):
        p = naive_program(get_query("q8"))
        with pytest.raises(ValueError):
            p.to_compact()

    def test_first_operand_flags(self):
        # copies (C = N(v_{l-1})) carry flag 1; single-op sets put the
        # lifted dependency first => flag 0 (the paper's Fig. 9b rules)
        c = motioned_program(get_query("q8")).to_compact()
        # q8 clique: slot 0 = universe, slot 1 = copy N(0), rest are ops
        assert c.set_ops[1, 0] == 1
        assert (c.set_ops[2:, 0] == 0).all()

    def test_candidate_slots_and_levels(self):
        p = motioned_program(get_query("q5"), vertex_induced=True)
        c = p.to_compact()
        assert c.candidate_slots.size == p.num_levels
        for l in range(p.num_levels):
            assert c.level_of_slot(int(c.candidate_slots[l])) <= l


class TestCompactInterpreter:
    """The compact arrays must carry everything a matcher needs."""

    @pytest.mark.parametrize("name", ["q1", "q2", "q5", "q7", "q8"])
    @pytest.mark.parametrize("vi", [False, True])
    def test_counts_match_oracle(self, name, vi):
        from repro.baselines import count_matches_recursive
        from repro.codemotion import count_matches_compact
        from repro.graph import erdos_renyi
        from repro.pattern import build_plan

        g = erdos_renyi(28, 0.3, seed=17)
        plan = build_plan(get_query(name), g, vertex_induced=vi)
        assert count_matches_compact(g, plan) == count_matches_recursive(g, plan)

    def test_labeled_counts(self):
        import numpy as np

        from repro.baselines import count_matches_recursive
        from repro.codemotion import count_matches_compact
        from repro.graph import assign_random_labels, erdos_renyi

        from repro.pattern import build_plan

        g = assign_random_labels(erdos_renyi(30, 0.35, seed=3), num_labels=3, seed=1)
        q = get_query("q5").with_labels(np.array([0, 1, 2, 0, 1]))
        plan = build_plan(q, g)
        assert count_matches_compact(g, plan) == count_matches_recursive(g, plan)

    def test_naive_plan_rejected(self):
        from repro.codemotion import CompactMatcher
        from repro.graph import erdos_renyi
        from repro.pattern import build_plan

        g = erdos_renyi(10, 0.3, seed=1)
        plan = build_plan(get_query("q5"), g, code_motion=False)
        with pytest.raises(ValueError):
            CompactMatcher(g, plan)


class TestLabeledPrograms:
    def make_labeled(self):
        q = fig2_query().with_labels([0, 1, 2, 3])
        return q, motioned_program(q)

    def test_candidate_filters_singleton(self):
        q, p = self.make_labeled()
        for l, sid in enumerate(p.candidate_of_level):
            flt = p.recipes[sid].label_filter
            assert flt is not None
            assert int(q.labels[l]) in flt

    def test_merged_filters_union_of_consumers(self):
        q, p = self.make_labeled()
        for sid, r in enumerate(p.recipes):
            if r.base is BaseKind.REF:
                dep = p.recipes[r.base_arg]
                assert dep.label_filter is not None
                assert r.label_filter is not None
                assert r.label_filter <= dep.label_filter or dep.label_filter >= r.label_filter

    def test_split_program_has_more_sets(self):
        q = get_query("q16").with_labels([0, 1, 2, 3, 4, 5])
        merged = motioned_program(q)
        split = split_labeled_program(merged, q)
        split.validate()
        assert split.num_sets >= merged.num_sets

    def test_split_sets_single_label(self):
        q, p = self.make_labeled()
        split = split_labeled_program(p, q)
        for r in split.recipes:
            if r.label_filter is not None:
                assert len(r.label_filter) == 1

    def test_footprint_accounting(self):
        q, p = self.make_labeled()
        fp8 = shared_memory_footprint(p, unroll=8)
        fp1 = shared_memory_footprint(p, unroll=1)
        assert fp8.csize_bytes == 8 * fp1.csize_bytes
        assert fp8.total_bytes > fp1.total_bytes

    def test_split_program_preserves_counts(self):
        """The Fig. 10a layout must match exactly like the merged one."""
        import dataclasses

        import numpy as np

        from repro import STMatchEngine
        from repro.baselines import count_matches_recursive
        from repro.graph import assign_random_labels, erdos_renyi
        from repro.pattern import build_plan

        g = assign_random_labels(erdos_renyi(32, 0.35, seed=9), num_labels=3, seed=2)
        q = get_query("q5").with_labels(np.array([0, 1, 2, 0, 1]))
        plan = build_plan(q, g, vertex_induced=True)
        split = split_labeled_program(plan.program, plan.query)
        split_plan = dataclasses.replace(plan, program=split)
        ref = count_matches_recursive(g, plan)
        assert STMatchEngine(g).run(split_plan).matches == ref

    def test_split_clique_quadratic_growth(self):
        # the paper's n(n-1)/2 lower bound shows up on cliques with
        # distinct labels
        q = get_query("q24").with_labels(list(range(7)))
        merged = motioned_program(q)
        split = split_labeled_program(merged, q)
        assert split.num_sets >= 7 * 6 / 2

    def test_merged_footprint_smaller_than_split(self):
        q = get_query("q16").with_labels([0, 1, 2, 0, 1, 2])
        merged = motioned_program(q)
        split = split_labeled_program(merged, q)
        assert (
            shared_memory_footprint(merged).total_bytes
            <= shared_memory_footprint(split).total_bytes
        )


class TestRecipeValidation:
    def test_ops_must_increase(self):
        with pytest.raises(ValueError):
            SetRecipe(
                base=BaseKind.NEIGHBORS, base_arg=0,
                ops=(SetOp(OpKind.INTERSECT, 2), SetOp(OpKind.INTERSECT, 1)),
                level=3,
            )

    def test_level_before_operands_rejected(self):
        with pytest.raises(ValueError):
            SetRecipe(base=BaseKind.NEIGHBORS, base_arg=3, ops=(), level=1)

    def test_program_schedule_must_cover_all_sets(self):
        r0 = SetRecipe(base=BaseKind.ALL, base_arg=-1, ops=(), level=0, is_candidate_for=0)
        with pytest.raises(ValueError):
            SetProgram(recipes=[r0], candidate_of_level=[0], sets_at_level=[[]], num_levels=1)
