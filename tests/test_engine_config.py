"""EngineConfig / DeviceConfig construction-time validation."""

from __future__ import annotations

import pytest

from repro.core.config import EngineConfig
from repro.virtgpu.device import DeviceConfig


def test_defaults_are_the_papers_settings():
    cfg = EngineConfig()
    assert cfg.unroll == 8
    assert cfg.stop_level == 2
    assert cfg.detect_level == 2  # min(2, stop_level)
    assert cfg.max_degree == 4096
    assert cfg.local_steal and cfg.global_steal and cfg.code_motion
    assert not cfg.sanitize


def test_detect_level_resolves_against_stop_level():
    assert EngineConfig(stop_level=0).detect_level == 0
    assert EngineConfig(stop_level=1).detect_level == 1
    assert EngineConfig(stop_level=5).detect_level == 2
    assert EngineConfig(stop_level=3, detect_level=3).detect_level == 3


def test_detect_level_above_stop_level_rejected():
    with pytest.raises(ValueError, match="detect_level"):
        EngineConfig(stop_level=1, detect_level=2)


@pytest.mark.parametrize(
    "kw, match",
    [
        ({"unroll": 0}, "unroll"),
        ({"unroll": -3}, "unroll"),
        ({"stop_level": -1}, "stop_level"),
        ({"detect_level": -1}, "detect_level"),
        ({"chunk_size": 0}, "chunk_size"),
        ({"max_degree": 0}, "max_degree"),
        ({"max_results": 0}, "max_results"),
    ],
)
def test_invalid_engine_config_rejected(kw, match):
    with pytest.raises(ValueError, match=match):
        EngineConfig(**kw)


def test_with_revalidates():
    cfg = EngineConfig()
    with pytest.raises(ValueError, match="unroll"):
        cfg.with_(unroll=0)
    with pytest.raises(ValueError, match="detect_level"):
        cfg.with_(stop_level=1, detect_level=2)


def test_ablation_variants_validate():
    assert EngineConfig.naive().unroll == 1
    assert not EngineConfig.naive().local_steal
    assert EngineConfig.localsteal().local_steal
    assert not EngineConfig.localsteal().global_steal
    assert EngineConfig.local_global_steal().global_steal
    assert EngineConfig.full().unroll == 8


def test_sanitize_flag_round_trips():
    cfg = EngineConfig.full(sanitize=True)
    assert cfg.sanitize
    assert cfg.with_(unroll=2).sanitize


@pytest.mark.parametrize(
    "kw, match",
    [
        ({"num_blocks": 0}, "num_blocks"),
        ({"warps_per_block": 0}, "warps_per_block"),
        ({"shared_mem_per_block": 0}, "shared_mem"),
        ({"global_mem_bytes": 0}, "global_mem"),
    ],
)
def test_invalid_device_config_rejected(kw, match):
    with pytest.raises(ValueError, match=match):
        DeviceConfig(**kw)


def test_device_scaled_keeps_validating():
    dev = DeviceConfig()
    assert dev.scaled(2).num_blocks == 16
    assert dev.scaled(2).num_warps == dev.num_warps * 2
