"""Tests for the fault-injection side: plans, injectors, hooks.

Covers the deterministic :class:`FaultPlan` schedules, the runtime
:class:`FaultInjector` hooks in the virtual device / scheduler / steal
board, and the engine-level statuses a killed launch reports.
"""

import pytest

from repro import EngineConfig, STMatchEngine, get_query
from repro.core.counters import RunStatus
from repro.faults import (
    DeviceFailError,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    InjectedFault,
    KernelTimeoutError,
)
from repro.graph import powerlaw_cluster
from repro.virtgpu.device import VirtualDevice


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster(150, m=4, p_triangle=0.6, seed=7)


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent("cosmic_ray")

    def test_clock_kinds_need_trigger(self):
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.DEVICE_FAIL, device=0)
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.KERNEL_TIMEOUT, device=0, at_cycle=-1.0)

    def test_machine_fail_needs_machine_and_time(self):
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.MACHINE_FAIL, machine=0)
        ok = FaultEvent(FaultKind.MACHINE_FAIL, machine=0, at_ms=0.5)
        assert "machine 0" in ok.describe()

    def test_count_positive(self):
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.STEAL_LOSS, device=0, count=0)


class TestFaultPlan:
    def test_random_is_deterministic(self):
        a = FaultPlan.random(42, num_devices=4, num_machines=3)
        b = FaultPlan.random(42, num_devices=4, num_machines=3)
        assert a.events == b.events

    def test_different_seeds_differ_somewhere(self):
        plans = [FaultPlan.random(s, num_devices=4, num_machines=3)
                 for s in range(16)]
        assert len({p.events for p in plans}) > 1

    def test_cluster_keeps_a_survivor(self):
        for seed in range(40):
            plan = FaultPlan.random(seed, num_devices=2, num_machines=3)
            dead = {e.machine for e in plan.events
                    if e.kind == FaultKind.MACHINE_FAIL}
            assert len(dead) < 3, f"seed {seed} killed the whole cluster"

    def test_injector_for_collects_device_events(self):
        plan = FaultPlan(events=(
            FaultEvent(FaultKind.DEVICE_FAIL, device=1, at_cycle=100.0),
            FaultEvent(FaultKind.TRANSIENT_OOM, device=1, attempt=0),
            FaultEvent(FaultKind.STEAL_LOSS, device=1, count=3),
            FaultEvent(FaultKind.DEVICE_FAIL, device=0, at_cycle=5.0),
        ))
        inj = plan.injector_for(1, attempt=0)
        assert inj.fail_at == 100.0 and inj.oom and inj.steal_losses == 3
        # other device/attempt scopes stay clean
        assert not plan.injector_for(1, attempt=1).armed
        assert plan.injector_for(0, attempt=0).fail_at == 5.0

    def test_machine_fail_ms_and_cluster_losses(self):
        plan = FaultPlan(events=(
            FaultEvent(FaultKind.MACHINE_FAIL, machine=2, at_ms=0.7),
            FaultEvent(FaultKind.STEAL_LOSS, count=2),  # device=None: cluster
            FaultEvent(FaultKind.STEAL_LOSS, device=0, count=9),
        ))
        assert plan.machine_fail_ms(2) == 0.7
        assert plan.machine_fail_ms(0) is None
        assert plan.cluster_steal_losses() == 2


class TestFaultInjector:
    def test_fail_fires_once_and_kills_device(self):
        dev = VirtualDevice()
        inj = FaultInjector(0, fail_at=50.0)
        dev.attach_injector(inj)
        dev.check_faults(10.0)  # before the trigger: nothing
        with pytest.raises(DeviceFailError):
            dev.check_faults(60.0)
        assert not dev.alive
        assert inj.fired == ["device_fail@50"]
        dev.check_faults(70.0)  # consumed: does not re-fire

    def test_timeout_is_injected_fault(self):
        inj = FaultInjector(0, timeout_at=5.0)
        with pytest.raises(KernelTimeoutError) as ei:
            inj.on_clock(VirtualDevice(), 6.0)
        assert isinstance(ei.value, InjectedFault)

    def test_oom_fires_once(self):
        inj = FaultInjector(0, oom=True)
        assert inj.inject_launch_oom()
        assert not inj.inject_launch_oom()

    def test_steal_losses_count_down(self):
        inj = FaultInjector(0, steal_losses=2)
        assert inj.drop_steal_message()
        assert inj.drop_steal_message()
        assert not inj.drop_steal_message()
        assert inj.fired.count("steal_loss") == 2


class TestInjectedKernelFailures:
    def test_device_fail_mid_kernel(self, graph):
        dev = VirtualDevice()
        dev.attach_injector(FaultInjector(0, fail_at=1_000.0))
        res = STMatchEngine(graph).run(get_query("q5"), device=dev)
        assert res.status == RunStatus.FAILED
        assert res.matches == 0  # a dead launch never exposes a partial count
        assert res.error is not None and not dev.alive
        assert "device failure" in res.detail

    def test_timeout_reports_timeout_status(self, graph):
        dev = VirtualDevice()
        dev.attach_injector(FaultInjector(0, timeout_at=1_000.0))
        res = STMatchEngine(graph).run(get_query("q5"), device=dev)
        assert res.status == RunStatus.TIMEOUT
        assert res.matches == 0
        assert dev.alive  # the device survives a watchdog kill

    def test_injected_oom_carries_real_sizes(self, graph):
        dev = VirtualDevice()
        dev.attach_injector(FaultInjector(0, oom=True))
        res = STMatchEngine(graph).run(get_query("q5"), device=dev)
        assert res.status == RunStatus.OOM
        assert "injected transient fault" in res.detail
        assert res.error is not None and res.error.requested > 0

    def test_steal_loss_preserves_counts(self, graph):
        q = get_query("q7")
        base = STMatchEngine(graph).run(q)
        dev = VirtualDevice()
        dev.attach_injector(FaultInjector(0, steal_losses=4))
        res = STMatchEngine(graph).run(q, device=dev)
        # the donor re-absorbs the divided stack: nothing is lost
        assert res.status == RunStatus.OK
        assert res.matches == base.matches

    def test_steal_loss_counts_surface(self, graph):
        q = get_query("q7")
        dev = VirtualDevice()
        inj = FaultInjector(0, steal_losses=100)
        dev.attach_injector(inj)
        res = STMatchEngine(graph).run(q, device=dev)
        # losses only register when a global push actually happened
        assert res.num_lost_steals == inj.fired.count("steal_loss")

    def test_steal_loss_with_sanitizer(self, graph):
        # the reabsorb path must not trip X501/X502/X505
        q = get_query("q7")
        cfg = EngineConfig(sanitize=True, fastpath=False)
        base = STMatchEngine(graph, cfg).run(q)
        dev = VirtualDevice()
        dev.attach_injector(FaultInjector(0, steal_losses=50))
        res = STMatchEngine(graph, cfg).run(q, device=dev)
        assert res.matches == base.matches


class TestRunStatusHelpers:
    def test_worst_ordering(self):
        assert RunStatus.worst([RunStatus.OK, RunStatus.RECOVERED]) \
            == RunStatus.RECOVERED
        assert RunStatus.worst([RunStatus.RECOVERED, RunStatus.FAILED]) \
            == RunStatus.FAILED
        assert RunStatus.worst([]) == RunStatus.OK

    def test_countable_membership(self):
        assert RunStatus.OK in RunStatus.COUNTABLE
        assert RunStatus.RECOVERED in RunStatus.COUNTABLE
        assert RunStatus.BUDGET in RunStatus.COUNTABLE
        for s in (RunStatus.FAILED, RunStatus.TIMEOUT, RunStatus.OOM,
                  RunStatus.UNSUPPORTED):
            assert s not in RunStatus.COUNTABLE
