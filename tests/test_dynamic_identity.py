"""Batch-dynamic differential suite: the three-way identity.

For every seeded edit sequence the incremental count must equal the
full recount on the compacted mutated graph, and both must equal the
VF2 golden oracle's recount on the mutated edge list::

    base + Σ delta.net  ==  STMatchEngine(compact()).count  ==  VF2

The randomized matrix covers q1–q13 × {unlabeled, labeled} × seeds
(52 sequences × 2 batches each), plus edge cases (no-op, delete-only,
insert-only, delete+insert of the same edge, raw embedding deltas) and
fixture-pinned cells on the golden corpus, so the incremental path is
checked against ground truth, not just against the engine it reuses.
"""

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import STMatchEngine
from repro.dynamic import EditBatch, IncrementalMatcher, OverlayGraph, count_delta
from repro.graph.csr import CSRGraph
from repro.pattern import QUERIES

from tests import oracle

QUERY_NAMES = [f"q{i}" for i in range(1, 14)]
SEQUENCE_SEEDS = [0, 1]
BATCHES_PER_SEQUENCE = 2


def _base_graph(seed: int) -> CSRGraph:
    import networkx as nx

    g = nx.powerlaw_cluster_graph(16, 2, 0.3, seed=40 + seed)
    return CSRGraph.from_networkx(g, name=f"dyn{seed}")


def _prepare(qname: str, labeled: bool, seed: int):
    g = _base_graph(seed)
    q = QUERIES[qname]
    if labeled:
        g, q = oracle.labeled_pair(g, q)
    return g, q


class TestRandomizedSequences:
    """52 seeded sequences (13 queries × 2 label modes × 2 seeds), each
    applying BATCHES_PER_SEQUENCE batches through IncrementalMatcher."""

    @pytest.mark.parametrize("seed", SEQUENCE_SEEDS)
    @pytest.mark.parametrize("labeled", [False, True],
                             ids=["unlabeled", "labeled"])
    @pytest.mark.parametrize("qname", QUERY_NAMES)
    def test_three_way_identity(self, qname, labeled, seed):
        g, q = _prepare(qname, labeled, seed)
        matcher = IncrementalMatcher(g, q)
        assert matcher.count == oracle.count_oracle(g, q)
        for step in range(BATCHES_PER_SEQUENCE):
            before = matcher.materialized()
            inserts, deletes = oracle.seeded_edit_batch(
                before, seed=1000 * seed + 10 * step + int(qname[1:]))
            delta = matcher.apply_batch(
                EditBatch.from_lists(inserts=inserts, deletes=deletes))
            recount = matcher.recount()
            golden = oracle.golden_count_after_edits(
                before, q, inserts, deletes)
            assert matcher.count == recount == golden, (
                f"{qname} labeled={labeled} seed={seed} step={step}: "
                f"incremental={matcher.count} recount={recount} "
                f"vf2={golden} (delta {delta})")


class TestEdgeCases:
    def test_noop_batch_is_free(self):
        g, q = _prepare("q1", False, 0)
        existing = next(iter(g.edges()))
        # inserting a present edge / deleting an absent one normalizes away
        batch = EditBatch.from_lists(inserts=[existing], deletes=[(0, 15)])
        assert not g.has_edge(0, 15)
        delta, mutated = count_delta(g, q, batch)
        assert delta.net == 0 and delta.anchor_runs == 0
        assert mutated.num_edges == g.num_edges

    def test_delete_only_and_insert_only(self):
        g, q = _prepare("q3", False, 1)
        dels = list(g.edges())[:3]
        delta, mutated = count_delta(g, q, EditBatch.from_lists(deletes=dels))
        assert delta.added == 0 and delta.num_inserts == 0
        assert STMatchEngine(mutated.compact()).count(q) == \
            STMatchEngine(g).count(q) - delta.removed
        back, restored = count_delta(mutated, q,
                                     EditBatch.from_lists(inserts=dels))
        assert back.removed == 0 and back.num_deletes == 0
        # reinserting the deleted edges restores the original count
        assert delta.net + back.net == 0
        assert STMatchEngine(restored.compact()).count(q) == \
            STMatchEngine(g).count(q)

    def test_delete_then_insert_same_edge_is_noop(self):
        g, q = _prepare("q2", False, 0)
        e = next(iter(g.edges()))
        delta, mutated = count_delta(
            g, q, EditBatch.from_lists(inserts=[e], deletes=[e]))
        assert delta.net == 0 and delta.num_inserts == 0 \
            and delta.num_deletes == 0
        assert mutated.num_edges == g.num_edges

    def test_raw_embedding_deltas(self):
        # symmetry_breaking=False must report embedding (not unique
        # match) deltas: exactly |Aut| times the unique-match delta
        g, q = _prepare("q6", False, 0)
        inserts, deletes = oracle.seeded_edit_batch(g, seed=5)
        batch = EditBatch.from_lists(inserts=inserts, deletes=deletes)
        unique, _ = count_delta(g, q, batch, symmetry_breaking=True)
        raw, _ = count_delta(g, q, batch, symmetry_breaking=False)
        aut = len(q.automorphisms())
        assert raw.added == unique.added * aut
        assert raw.removed == unique.removed * aut

    def test_budgeted_config_rejected(self):
        g, q = _prepare("q1", False, 0)
        with pytest.raises(ValueError, match="max_results"):
            count_delta(g, q, EditBatch.from_lists(inserts=[(0, 9)]),
                        config=EngineConfig(max_results=10))

    def test_single_vertex_query_never_changes(self):
        g = _base_graph(0)
        from repro.pattern.query import QueryGraph

        q = QueryGraph(adj=np.zeros((1, 1), dtype=bool), name="v")
        inserts, deletes = oracle.seeded_edit_batch(g, seed=3)
        delta, _ = count_delta(
            g, q, EditBatch.from_lists(inserts=inserts, deletes=deletes))
        assert delta.net == 0 and delta.anchor_runs == 0

    def test_compaction_threshold_preserves_counts(self):
        g, q = _prepare("q1", False, 0)
        # force a compact after every batch; counts must be unaffected
        matcher = IncrementalMatcher(g, q, compact_threshold=0)
        for step in range(3):
            inserts, deletes = oracle.seeded_edit_batch(
                matcher.materialized(), seed=20 + step)
            matcher.apply_batch(
                EditBatch.from_lists(inserts=inserts, deletes=deletes))
            assert isinstance(matcher.graph, CSRGraph)  # compacted
            assert matcher.count == matcher.recount()


class TestFixturePinned:
    """The incremental path against the checked-in golden corpus: for
    every mutated fixture cell, fixture base count + delta.net must
    equal the fixture's VF2 count of the mutated graph."""

    @pytest.fixture(scope="class")
    def fixture(self):
        return oracle.load_fixture()

    @pytest.fixture(scope="class")
    def graphs(self):
        return oracle.corpus_graphs()

    @pytest.mark.parametrize("mode", ["unlabeled", "labeled"])
    @pytest.mark.parametrize("qname", QUERY_NAMES)
    def test_incremental_matches_golden(self, fixture, graphs, qname, mode):
        q = QUERIES[qname]
        for gname, g in graphs.items():
            if mode == "labeled":
                g, lq = oracle.labeled_pair(g, q)
            else:
                lq = q
            for cell in fixture["mutated"][gname]:
                batch = EditBatch.from_lists(
                    inserts=[tuple(e) for e in cell["inserts"]],
                    deletes=[tuple(e) for e in cell["deletes"]])
                delta, mutated = count_delta(g, lq, batch)
                base = fixture["counts"][gname][mode][qname]
                want = cell["counts"][mode][qname]
                assert base + delta.net == want, (
                    f"{gname}/{qname}/{mode} seed={cell['seed']}: "
                    f"{base} + {delta.net} != {want}")
                # the overlay the delta was computed through agrees too
                assert STMatchEngine(mutated).count(lq) == want


class TestOverlayEngineEquivalence:
    def test_engine_runs_directly_on_overlay(self):
        # the whole point of the read-API contract: counts on the
        # overlay equal counts on the compacted CSR, fastpath included
        g, q = _prepare("q4", True, 0)
        inserts, deletes = oracle.seeded_edit_batch(g, seed=9)
        ov = OverlayGraph.from_edits(
            g, EditBatch.from_lists(inserts=inserts, deletes=deletes))
        compact = ov.compact()
        for fastpath in (False, True):
            cfg = EngineConfig(fastpath=fastpath)
            a = STMatchEngine(ov, cfg).run(q)
            b = STMatchEngine(compact, cfg).run(q)
            assert a.matches == b.matches
