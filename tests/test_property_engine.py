"""Property-based tests on engine-level invariants (hypothesis).

Random small graphs and queries; the invariants are the load-bearing
ones: engines agree with the oracle, stealing/unrolling/motion never
change counts, the subgraph/embedding identity holds, and divide-and-
copy preserves the exact multiset of remaining candidates.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import EngineConfig, STMatchEngine
from repro.baselines import DryadicEngine, count_matches_recursive
from repro.core.stack import Frame, WarpStack, divide_and_copy
from repro.graph import CSRGraph
from repro.pattern import QueryGraph, build_plan, num_automorphisms

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def random_graph(draw, max_n=18):
    n = draw(st.integers(4, max_n))
    density = draw(st.floats(0.15, 0.5))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    mask = rng.random((n, n)) < density
    edges = [(i, j) for i in range(n) for j in range(i + 1, n) if mask[i, j]]
    return CSRGraph.from_edges(n, edges)


@st.composite
def random_query(draw, max_k=5):
    k = draw(st.integers(2, max_k))
    # random connected query: random spanning tree + extra edges
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    edges = set()
    for v in range(1, k):
        edges.add((int(rng.integers(0, v)), v))
    extra = draw(st.integers(0, k))
    for _ in range(extra):
        a, b = int(rng.integers(0, k)), int(rng.integers(0, k))
        if a != b:
            edges.add((min(a, b), max(a, b)))
    return QueryGraph.from_edges(k, sorted(edges))


class TestEngineInvariants:
    @given(g=random_graph(), q=random_query(), vi=st.booleans())
    @SETTINGS
    def test_engine_matches_oracle(self, g, q, vi):
        eng = STMatchEngine(g)
        plan = eng.plan(q, vertex_induced=vi)
        assert eng.run(plan).matches == count_matches_recursive(g, plan)

    @given(g=random_graph(), q=random_query())
    @SETTINGS
    def test_unroll_invariant(self, g, q):
        r1 = STMatchEngine(g, EngineConfig(unroll=1)).run(q)
        r8 = STMatchEngine(g, EngineConfig(unroll=8)).run(q)
        assert r1.matches == r8.matches

    @given(g=random_graph(), q=random_query())
    @SETTINGS
    def test_code_motion_invariant(self, g, q):
        a = STMatchEngine(g, EngineConfig(code_motion=True)).run(q)
        b = STMatchEngine(g, EngineConfig(code_motion=False)).run(q)
        assert a.matches == b.matches

    @given(g=random_graph(), q=random_query())
    @SETTINGS
    def test_stealing_invariant(self, g, q):
        a = STMatchEngine(g, EngineConfig.naive()).run(q)
        b = STMatchEngine(g, EngineConfig.full()).run(q)
        assert a.matches == b.matches

    @given(g=random_graph(), q=random_query())
    @SETTINGS
    def test_subgraph_embedding_identity(self, g, q):
        eng = STMatchEngine(g)
        sub = eng.run(eng.plan(q, symmetry_breaking=True)).matches
        emb = eng.run(eng.plan(q, symmetry_breaking=False)).matches
        assert emb == sub * num_automorphisms(q)

    @given(g=random_graph(), q=random_query(), vi=st.booleans())
    @SETTINGS
    def test_dryadic_agrees_with_stmatch(self, g, q, vi):
        st_res = STMatchEngine(g).run(q, vertex_induced=vi)
        dr_res = DryadicEngine(g).run(q, vertex_induced=vi)
        assert st_res.matches == dr_res.matches

    @given(g=random_graph(max_n=14), q=random_query(max_k=4))
    @SETTINGS
    def test_labeled_engine_matches_oracle(self, g, q):
        labels = (np.arange(g.num_vertices) * 7 % 3).astype(np.int32)
        gl = g.with_labels(labels)
        ql = q.with_labels((np.arange(q.size) % 3).astype(np.int32))
        eng = STMatchEngine(gl)
        plan = eng.plan(ql)
        assert eng.run(plan).matches == count_matches_recursive(gl, plan)


class TestDivideAndCopyProperty:
    @st.composite
    @staticmethod
    def stack_strategy(draw):
        depth = draw(st.integers(1, 4))
        s = WarpStack()
        for level in range(depth):
            n_slots = 1 if level == 0 else draw(st.integers(1, 4))
            cands = []
            for _ in range(n_slots):
                size = draw(st.integers(0, 10))
                cands.append(np.sort(draw(st.lists(
                    st.integers(0, 200), min_size=size, max_size=size, unique=True
                ))).astype(np.int64) if size else np.empty(0, dtype=np.int64))
            uiter = draw(st.integers(0, n_slots - 1))
            it = draw(st.integers(0, max(0, cands[uiter].size)))
            sv = (np.empty(0, dtype=np.int64) if level == 0
                  else np.arange(1000 + level * 10, 1000 + level * 10 + n_slots))
            s.push(Frame(level=level, slot_vertices=sv, cand=cands, uiter=uiter, iter=it))
        return s

    @given(stack=stack_strategy(), stop=st.integers(0, 3))
    @SETTINGS
    def test_split_preserves_remaining_multiset(self, stack, stop):
        # snapshot the remaining candidates per level/slot before the split
        before = {}
        for f in stack.frames:
            for u in range(f.nslots):
                lo = f.iter if u == f.uiter else (0 if u > f.uiter else f.cand[u].size)
                before[(f.level, u)] = sorted(f.cand[u][lo:].tolist())
        work = divide_and_copy(stack, stop_level=stop)
        after = {}
        for f in stack.frames:
            for u in range(f.nslots):
                lo = f.iter if u == f.uiter else (0 if u > f.uiter else f.cand[u].size)
                after.setdefault((f.level, u), []).extend(sorted(f.cand[u][lo:].tolist()))
        for f in work.frames:
            for u in range(f.nslots):
                after.setdefault((f.level, u), []).extend(f.cand[u][f.iter:].tolist())
        for key, orig in before.items():
            level, u = key
            if level > stop:
                continue  # untouched levels trivially preserved
            got = sorted(after.get(key, []))
            assert got == orig, (key, orig, got)
