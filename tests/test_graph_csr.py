"""Unit tests for CSR graph storage."""

import numpy as np
import pytest

from repro.graph import CSRGraph


class TestConstruction:
    def test_from_edges_basic(self):
        g = CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert g.num_vertices == 4
        assert g.num_edges == 3
        assert list(g.neighbors(1)) == [0, 2]

    def test_from_edges_symmetric(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)

    def test_self_loops_dropped(self):
        g = CSRGraph.from_edges(3, [(0, 0), (0, 1), (2, 2)])
        assert g.num_edges == 1
        assert not g.has_edge(0, 0)

    def test_duplicate_edges_merged(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1
        assert list(g.neighbors(0)) == [1]

    def test_empty_graph(self):
        g = CSRGraph.from_edges(5, [])
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.neighbors(0).size == 0

    def test_zero_vertex_graph(self):
        g = CSRGraph.from_edges(0, [])
        assert g.num_vertices == 0
        assert g.max_degree() == 0

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(3, [(0, 5)])

    def test_directed_graph_one_direction(self):
        g = CSRGraph.from_edges(3, [(0, 1)], directed=True)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert g.num_edges == 1

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(3, np.array([[0, 1, 2]]))


class TestInvariants:
    def test_neighbor_lists_sorted_unique(self):
        g = CSRGraph.from_edges(6, [(5, 0), (3, 0), (0, 1), (0, 4)])
        nbrs = g.neighbors(0)
        assert list(nbrs) == sorted(set(nbrs.tolist()))

    def test_validate_rejects_bad_indptr(self):
        with pytest.raises(ValueError):
            CSRGraph(indptr=np.array([0, 2]), indices=np.array([1], dtype=np.int32))

    def test_validate_rejects_unsorted_neighbors(self):
        with pytest.raises(ValueError):
            CSRGraph(indptr=np.array([0, 2, 2]), indices=np.array([1, 0], dtype=np.int32))

    def test_validate_rejects_label_shape(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(3, [(0, 1)], labels=[1, 2])

    def test_validate_rejects_negative_labels(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(0, 1)], labels=[-1, 0])


class TestAccessors:
    @pytest.fixture()
    def path4(self):
        return CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])

    def test_degree_scalar_and_vector(self, path4):
        assert path4.degree(0) == 1
        assert path4.degree(1) == 2
        assert list(path4.degree()) == [1, 2, 2, 1]

    def test_max_median_degree(self, path4):
        assert path4.max_degree() == 2
        assert path4.median_degree() == 1.5

    def test_edges_iteration_canonical(self, path4):
        assert list(path4.edges()) == [(0, 1), (1, 2), (2, 3)]

    def test_has_edge_missing(self, path4):
        assert not path4.has_edge(0, 3)
        assert not path4.has_edge(0, 2)

    def test_labels_roundtrip(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)], labels=[2, 0, 1])
        assert g.is_labeled
        assert g.num_labels == 3
        assert g.label_of(0) == 2
        assert list(g.vertices_with_label(1)) == [2]

    def test_unlabeled_accessors(self):
        g = CSRGraph.from_edges(2, [(0, 1)])
        assert not g.is_labeled
        assert g.num_labels == 0
        assert g.vertices_with_label(0).size == 0
        with pytest.raises(ValueError):
            g.label_of(0)

    def test_with_without_labels(self):
        g = CSRGraph.from_edges(2, [(0, 1)])
        gl = g.with_labels([1, 1])
        assert gl.is_labeled and not g.is_labeled
        assert not gl.without_labels().is_labeled


class TestNetworkxBridge:
    def test_roundtrip(self):
        g = CSRGraph.from_edges(5, [(0, 1), (1, 2), (3, 4)], labels=[0, 1, 2, 1, 0])
        nx_g = g.to_networkx()
        back = CSRGraph.from_networkx(nx_g, label_attr="label")
        assert back.num_vertices == g.num_vertices
        assert sorted(back.edges()) == sorted(g.edges())
        assert np.array_equal(back.labels, g.labels)

    def test_from_networkx_relabels_sparse_ids(self):
        import networkx as nx

        h = nx.Graph()
        h.add_edge(10, 20)
        g = CSRGraph.from_networkx(h)
        assert g.num_vertices == 2
        assert g.has_edge(0, 1)


class TestBatchedAccessors:
    def _graph(self):
        return CSRGraph.from_edges(
            6, [(0, 1), (0, 2), (0, 3), (1, 2), (2, 3), (4, 5)]
        )

    def test_neighbors_batch_equals_per_vertex_slices(self):
        g = self._graph()
        vs = np.array([3, 0, 4, 0])
        vals, offs = g.neighbors_batch(vs)
        assert vals.dtype == g.indices.dtype
        assert offs.tolist()[0] == 0
        for i, v in enumerate(vs):
            seg = vals[offs[i]: offs[i + 1]]
            assert seg.tolist() == g.neighbors(int(v)).tolist()

    def test_neighbors_batch_empty_batch_and_isolated(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        vals, offs = g.neighbors_batch(np.array([2, 2]))
        assert vals.size == 0
        assert offs.tolist() == [0, 0, 0]
        vals, offs = g.neighbors_batch(np.array([], dtype=np.int64))
        assert vals.size == 0 and offs.tolist() == [0]

    def test_in_neighbors_batch_directed(self):
        g = CSRGraph.from_edges(3, [(0, 1), (2, 1)], directed=True)
        vals, offs = g.in_neighbors_batch(np.array([1, 0]))
        assert vals[offs[0]: offs[1]].tolist() == [0, 2]
        assert vals[offs[1]: offs[2]].tolist() == []

    def test_degree_is_cached_and_consistent(self):
        g = self._graph()
        deg = g.degree()
        assert deg is g.degree()  # cached array, not recomputed
        assert deg.tolist() == [np.asarray(g.neighbors(v)).size for v in range(6)]
        assert g.degree(0) == 3
        assert g.degree(np.array([0, 4])).tolist() == [3, 1]

    def test_adjacency_bitmap_rows(self):
        g = self._graph()
        rows = g.adjacency_bitmap(3)  # only vertices 0 and 2 have deg >= 3
        assert sorted(rows) == [0, 2]
        assert rows[0].tolist() == [False, True, True, True, False, False]
        assert rows[2].tolist() == [True, True, False, True, False, False]

    def test_adjacency_bitmap_cached_per_threshold(self):
        g = self._graph()
        assert g.adjacency_bitmap(3) is g.adjacency_bitmap(3)
        assert g.adjacency_bitmap(1) is not g.adjacency_bitmap(3)
        assert len(g.adjacency_bitmap(100)) == 0

    def test_adjacency_bitmap_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            self._graph().adjacency_bitmap(0)
