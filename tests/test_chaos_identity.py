"""Chaos sweep: count identity under randomized fault schedules.

A fixed-seed subset runs in tier-1 (fast, deterministic); the wider
randomized sweep is opt-in via ``-m chaos`` (or the CLI:
``python -m repro.bench chaos --seed-sweep N``).

The invariant under test is the one the recovery layer promises: a run
that reports a countable status (``ok``/``recovered``/``budget``)
counts **exactly** what the fault-free run counts — never one match
lost to a dead device, never one double-counted by a retry — and a
non-countable run carries a non-empty failure ``detail``.
"""

import pytest

from repro.bench import experiments
from repro.core.counters import RunStatus
from repro.core.distributed import run_distributed
from repro.core.multi_gpu import run_multi_gpu
from repro.faults import FaultPlan
from repro.graph import powerlaw_cluster
from repro.pattern import get_query


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster(150, m=4, p_triangle=0.6, seed=13)


@pytest.fixture(scope="module")
def fault_free(graph):
    from repro import EngineConfig, STMatchEngine

    return STMatchEngine(graph, EngineConfig()).run(get_query("q5")).matches


class TestFixedSeedSubset:
    """Deterministic slice of the chaos harness — always in tier-1."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_multigpu_identity(self, graph, fault_free, seed):
        from repro import EngineConfig

        plan = FaultPlan.random(seed, num_devices=3, num_machines=1)
        res = run_multi_gpu(graph, get_query("q5"), num_devices=3,
                            config=EngineConfig(checkpoint_interval=2),
                            fault_plan=plan)
        if res.countable:
            assert res.matches == fault_free
        else:
            assert res.detail

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_distributed_identity(self, graph, fault_free, seed):
        plan = FaultPlan.random(seed, num_devices=2, num_machines=2)
        base = run_distributed(graph, get_query("q5"), num_machines=2,
                               gpus_per_machine=2)
        res = run_distributed(graph, get_query("q5"), num_machines=2,
                              gpus_per_machine=2, fault_plan=plan)
        assert base.matches == fault_free
        if res.countable:
            assert res.matches == fault_free
        else:
            assert res.detail

    def test_bench_harness_fixed_seeds(self):
        # the CLI harness self-checks (raises AssertionError on any
        # identity violation); two seeds keep the tier-1 cost small
        result = experiments.chaos_sweep(num_seeds=2)
        assert len(result.data["seeds"]) == 2
        for row in result.data["seeds"]:
            assert row["identity"] in ("exact", "exact*", "failed-loud")
            assert RunStatus.severity(row["multi_gpu_status"]) >= 0


@pytest.mark.chaos
class TestWideSweep:
    """Randomized wide sweep — opt-in: ``pytest -m chaos``."""

    @pytest.mark.parametrize("seed", range(10))
    def test_multigpu_identity_wide(self, graph, fault_free, seed):
        from repro import EngineConfig

        plan = FaultPlan.random(100 + seed, num_devices=4, num_machines=1)
        res = run_multi_gpu(graph, get_query("q5"), num_devices=4,
                            config=EngineConfig(checkpoint_interval=1),
                            fault_plan=plan)
        if res.countable:
            assert res.matches == fault_free
        else:
            assert res.detail

    def test_bench_harness_sweep(self):
        # raises AssertionError internally on any identity violation
        result = experiments.chaos_sweep(num_seeds=5, seed_base=100)
        assert len(result.data["seeds"]) == 5
