"""Schedule exploration: count identity + zero HB findings per schedule.

Tier-1 runs a small fixed-seed subset; the full acceptance grid
(q1–q6 × {unlabeled, labeled} × unroll {1, 4}) is marked ``race`` (and
``slow``) so CI can run it as its own leg.
"""

from __future__ import annotations

import io
import json
from collections import Counter

import numpy as np
import pytest

from repro.analysis.cli import main
from repro.analysis.races import ProtocolLog, check_protocol, explore_schedules
from repro.core.config import EngineConfig
from repro.core.multi_gpu import run_multi_gpu
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.graph.datasets import load_dataset
from repro.graph.generators import rmat
from repro.pattern.motifs import QUERIES
from repro.pattern.query import QueryGraph
from repro.virtgpu.device import DeviceConfig


@pytest.fixture(scope="module")
def wiki():
    return load_dataset("wiki_vote", scale="tiny")


def labeled_variant(query: QueryGraph, graph) -> QueryGraph:
    """Cycle the query's labels over the graph's most common ones so
    labeled cells keep nonzero counts where the topology allows."""
    common = [l for l, _ in Counter(graph.labels.tolist()).most_common(3)]
    labels = [common[i % len(common)] for i in range(query.size)]
    return QueryGraph(adj=query.adj, labels=np.asarray(labels, dtype=np.int64),
                      name=f"{query.name}+L", directed=query.directed)


# -- tier-1 fixed-seed subset ----------------------------------------------


def test_explorer_count_identity_and_clean_hb(wiki):
    res = explore_schedules(wiki, QUERIES["q2"], max_schedules=3)
    assert res.ok, res.render()
    assert res.num_schedules == 3
    assert res.distinct_schedules >= 2, "seeded tiebreak produced no new order"
    assert all(o.matches == res.golden for o in res.outcomes)
    assert res.outcomes[0].seed is None and res.outcomes[1].seed == 0


def test_explorer_covers_global_steals():
    """A workload where the global board actually fires, so the explorer
    exercises the deposit→take edge it claims to check."""
    g = rmat(7, 4, seed=5)
    cfg = EngineConfig(device=DeviceConfig(num_blocks=3, warps_per_block=1),
                       chunk_size=1, local_steal=False)
    res = explore_schedules(g, QUERIES["q2"], config=cfg, max_schedules=2)
    assert res.ok, res.render()
    assert res.outcomes[0].global_steals >= 1
    assert all(o.matches == res.golden for o in res.outcomes)


def test_explorer_respects_explicit_golden(wiki):
    res = explore_schedules(wiki, QUERIES["q2"], max_schedules=1, golden=1)
    assert not res.ok
    assert {d.rule for d in res.violations} == {"X505"}


def test_explorer_rejects_zero_schedules(wiki):
    with pytest.raises(ValueError):
        explore_schedules(wiki, QUERIES["q2"], max_schedules=0)


# -- acceptance grid (race marker) -----------------------------------------


@pytest.mark.race
@pytest.mark.slow
@pytest.mark.parametrize("name", ["q1", "q2", "q3", "q4", "q5", "q6"])
def test_race_grid_query(name, wiki):
    labeled_graph = load_dataset("wiki_vote", scale="tiny", labeled=True)
    for unroll in (1, 4):
        for labeled in (False, True):
            graph = labeled_graph if labeled else wiki
            query = labeled_variant(QUERIES[name], labeled_graph) if labeled \
                else QUERIES[name]
            cfg = EngineConfig(
                device=DeviceConfig(num_blocks=2, warps_per_block=2),
                chunk_size=1, unroll=unroll,
            )
            res = explore_schedules(graph, query, config=cfg, max_schedules=2,
                                    subject=f"race[{query.name} unroll={unroll}]")
            assert res.ok, res.render()
            assert all(o.matches == res.golden for o in res.outcomes), res.render()


# -- coordinator protocol log, end to end ----------------------------------


def test_multi_gpu_protocol_log_clean(wiki):
    log = ProtocolLog()
    res = run_multi_gpu(wiki, QUERIES["q1"], num_devices=3, protocol_log=log)
    assert res.ok
    assert len(log.by_kind("shard_dispatch")) == 3
    assert len(log.by_kind("shard_result")) == 3
    assert not list(check_protocol(log))


def test_multi_gpu_protocol_log_faulted_recovery_clean(wiki):
    clean = run_multi_gpu(wiki, QUERIES["q1"], num_devices=3)
    fp = FaultPlan(events=tuple(
        FaultEvent(FaultKind.DEVICE_FAIL, device=0, attempt=a, at_cycle=10)
        for a in range(4)
    ))
    log = ProtocolLog()
    res = run_multi_gpu(wiki, QUERIES["q1"], num_devices=3, fault_plan=fp,
                        max_retries=3, protocol_log=log)
    assert res.countable and res.matches == clean.matches
    assert res.num_requeued == 1
    assert len(log.by_kind("shard_requeue")) == 1
    # the real runtime's ordering passes its own race rules
    rep = check_protocol(log)
    assert not list(rep), rep.render()


# -- CLI ``race`` subcommand -----------------------------------------------


def test_cli_race_clean_exit_zero():
    out = io.StringIO()
    rc = main(["race", "q2", "--max-schedules", "2",
               "--blocks", "2", "--warps", "2"], out=out)
    assert rc == 0
    assert "all clean" in out.getvalue()
    assert "clean" in out.getvalue().splitlines()[-1]


def test_cli_race_json_document():
    out = io.StringIO()
    rc = main(["race", "q2", "--max-schedules", "2",
               "--blocks", "2", "--warps", "2", "--json"], out=out)
    assert rc == 0
    doc = json.loads(out.getvalue())
    assert doc["command"] == "race" and doc["status"] == "clean"
    (wl,) = doc["workloads"]
    assert wl["ok"] and wl["num_schedules"] == 2
    assert all(s["matches"] == wl["golden"] for s in wl["schedules"])


def test_cli_race_unknown_pattern_exit_two(capsys):
    assert main(["race", "nope"], out=io.StringIO()) == 2
    assert "unknown pattern" in capsys.readouterr().err


def test_cli_race_bad_schedule_count_exit_two(capsys):
    assert main(["race", "q2", "--max-schedules", "0"], out=io.StringIO()) == 2


def test_cli_lint_json_document():
    out = io.StringIO()
    rc = main(["lint", "q3", "--json"], out=out)
    assert rc == 0
    doc = json.loads(out.getvalue())
    assert doc["command"] == "lint" and doc["status"] == "clean"
    (subj,) = doc["subjects"]
    assert subj["subject"] == "plan[q3]"
    assert subj["summary"]["errors"] == 0


def test_cli_rules_lists_concurrency_rules():
    out = io.StringIO()
    assert main(["rules"], out=out) == 0
    text = out.getvalue()
    for rid in ("X507", "X508", "X509", "X510",
                "L305", "L306", "L307", "L308"):
        assert rid in text
