"""Unit tests for warp stacks, frames and divide-and-copy stealing."""

import numpy as np
import pytest

from repro.core.stack import Frame, WarpStack, divide_and_copy

A = lambda *xs: np.array(xs, dtype=np.int64)
EMPTY = np.empty(0, dtype=np.int64)


def make_frame(level, cands, uiter=0, it=0, slot_vertices=None, sets=None):
    if slot_vertices is None:
        slot_vertices = np.arange(100, 100 + len(cands))
    return Frame(
        level=level,
        slot_vertices=np.asarray(slot_vertices),
        cand=[np.asarray(c) for c in cands],
        sets=sets or {},
        uiter=uiter,
        iter=it,
    )


class TestFrame:
    def test_remaining_active(self):
        f = make_frame(1, [A(1, 2, 3, 4)], it=1)
        assert f.remaining_active() == 3

    def test_remaining_total_counts_later_slots(self):
        f = make_frame(1, [A(1, 2), A(3, 4, 5)], uiter=0, it=2)
        assert f.remaining_active() == 0
        assert f.remaining_total() == 3

    def test_advance_slot(self):
        f = make_frame(1, [A(1), A(2)], it=1)
        assert f.advance_slot()
        assert f.uiter == 1 and f.iter == 0
        assert not f.advance_slot()

    def test_active_vertex_root(self):
        f = Frame(level=0, slot_vertices=np.empty(0, dtype=np.int64), cand=[A(1, 2)])
        assert f.active_vertex == -1

    def test_payload_elems(self):
        f = make_frame(1, [A(1, 2)], sets={0: [A(5, 6, 7)]})
        assert f.payload_elems() == 5


class TestWarpStack:
    def test_push_pop_depth(self):
        s = WarpStack()
        s.push(Frame(level=0, slot_vertices=EMPTY, cand=[A(1)]))
        s.push(make_frame(1, [A(2)]))
        assert s.depth == 2
        assert s.pop().level == 1

    def test_push_wrong_level_rejected(self):
        s = WarpStack()
        with pytest.raises(ValueError):
            s.push(make_frame(1, [A(1)]))

    def test_partial_match(self):
        s = WarpStack()
        s.push(Frame(level=0, slot_vertices=EMPTY, cand=[A(7, 8)]))
        s.push(make_frame(1, [A(9)], slot_vertices=A(7)))
        s.push(make_frame(2, [A(11)], slot_vertices=A(9)))
        assert s.partial_match() == [7, 9]
        assert s.match_up_to(1) == [7]

    def test_has_stealable(self):
        s = WarpStack()
        s.push(Frame(level=0, slot_vertices=EMPTY, cand=[A(1, 2, 3)], iter=0))
        assert s.has_stealable(stop_level=2)
        s.frames[0].iter = 2  # one remaining: not divisible
        assert not s.has_stealable(stop_level=2)

    def test_remaining_below_weights_shallow(self):
        deep = WarpStack()
        deep.push(Frame(level=0, slot_vertices=EMPTY, cand=[A(1)], iter=1))
        deep.push(make_frame(1, [A(1, 2, 3, 4)]))
        shallow = WarpStack()
        shallow.push(Frame(level=0, slot_vertices=EMPTY, cand=[A(1, 2, 3, 4)]))
        assert shallow.remaining_below(2) > deep.remaining_below(2)


class TestDivideAndCopy:
    def _stack(self):
        s = WarpStack()
        s.push(Frame(level=0, slot_vertices=EMPTY, cand=[A(0, 1, 2, 3, 4, 5)], iter=2))
        s.push(
            Frame(
                level=1,
                slot_vertices=A(1),
                cand=[A(10, 11, 12, 13)],
                sets={3: [A(10, 11, 12, 13, 14)]},
                iter=1,
            )
        )
        s.push(make_frame(2, [A(20, 21)], slot_vertices=A(10)))
        return s

    def test_split_halves_each_level(self):
        s = self._stack()
        work = divide_and_copy(s, stop_level=1)
        assert not work.empty
        # level 0: 4 remaining -> target keeps 2+2 consumed, stealer 2
        assert list(s.frames[0].cand[0]) == [0, 1, 2, 3]
        assert list(work.frames[0].cand[0]) == [4, 5]
        # level 1: 3 remaining -> keep 2, steal 1
        assert list(s.frames[1].cand[0]) == [10, 11, 12]
        assert list(work.frames[1].cand[0]) == [13]
        # stealer's iter points at the start of its halves
        assert all(f.iter == 0 for f in work.frames)

    def test_levels_beyond_stop_not_copied(self):
        s = self._stack()
        work = divide_and_copy(s, stop_level=1)
        assert len(work.frames) == 2  # levels 0 and 1 only

    def test_intermediate_sets_travel(self):
        s = self._stack()
        work = divide_and_copy(s, stop_level=1)
        assert 3 in work.frames[1].sets
        assert list(work.frames[1].sets[3][0]) == [10, 11, 12, 13, 14]

    def test_inactive_slots_emptied(self):
        s = WarpStack()
        s.push(Frame(level=0, slot_vertices=EMPTY, cand=[A(0, 1, 2, 3)], iter=0))
        s.push(
            Frame(
                level=1,
                slot_vertices=A(0, 1),
                cand=[A(10, 11, 12, 13), A(20, 21, 22)],
                uiter=0,
                iter=0,
            )
        )
        work = divide_and_copy(s, stop_level=2)
        # stealer gets half of the ACTIVE slot, nothing from slot 1
        assert work.frames[1].cand[1].size == 0
        # the target keeps slot 1 untouched
        assert list(s.frames[1].cand[1]) == [20, 21, 22]

    def test_nothing_divisible(self):
        s = WarpStack()
        s.push(Frame(level=0, slot_vertices=EMPTY, cand=[A(1)], iter=0))
        work = divide_and_copy(s, stop_level=2)
        assert work.empty

    def test_single_remaining_not_split(self):
        s = WarpStack()
        s.push(Frame(level=0, slot_vertices=EMPTY, cand=[A(1, 2)], iter=1))
        work = divide_and_copy(s, stop_level=0)
        assert work.empty
        assert list(s.frames[0].cand[0]) == [1, 2]

    def test_copied_elems_counts_payload(self):
        s = self._stack()
        work = divide_and_copy(s, stop_level=1)
        # 2 (level-0 steal) + 1 (level-1 steal) + 5 (set copy) = 8
        assert work.copied_elems == 8

    def test_disjoint_coverage(self):
        """Target + stealer candidates partition the original remaining."""
        s = self._stack()
        orig_lvl0 = list(s.frames[0].cand[0])
        orig_iter0 = s.frames[0].iter
        work = divide_and_copy(s, stop_level=1)
        kept = list(s.frames[0].cand[0])[orig_iter0:]
        stolen = list(work.frames[0].cand[0])
        assert sorted(kept + stolen) == sorted(orig_lvl0[orig_iter0:])
