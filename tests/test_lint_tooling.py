"""Lint-gate tests: run ruff/mypy over the analysis package when the
``lint`` extra is installed, skip cleanly otherwise.

The container the default test suite runs in does not ship ruff/mypy
(``pip install -e .[lint]`` adds them), so these tests gate on
availability rather than failing the suite.  The declarative config in
``pyproject.toml`` is validated unconditionally.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
import tomllib
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]


def has_module(name: str) -> bool:
    return importlib.util.find_spec(name) is not None


def test_pyproject_lint_config_is_well_formed():
    cfg = tomllib.loads((REPO / "pyproject.toml").read_text())
    assert "lint" in cfg["project"]["optional-dependencies"]
    ruff = cfg["tool"]["ruff"]
    assert ruff["src"] == ["src"]
    assert "E" in ruff["lint"]["select"] and "F" in ruff["lint"]["select"]
    mypy = cfg["tool"]["mypy"]
    assert mypy["mypy_path"] == "src"
    overrides = cfg["tool"]["mypy"]["overrides"]
    for module in ("repro.analysis.*", "repro.obs.*", "repro.parallel.*", "repro.faults.*"):
        strict = [o for o in overrides if o["module"] == module]
        assert strict and strict[0]["strict"] is True, module
    # strict packages must not sit in the ruff legacy-baseline ignores
    legacy = cfg["tool"]["ruff"]["lint"]["per-file-ignores"]
    for path in ("src/repro/analysis/*", "src/repro/obs/*",
                 "src/repro/parallel/*", "src/repro/faults/*"):
        assert path not in legacy, path
    markers = cfg["tool"]["pytest"]["ini_options"]["markers"]
    assert any(m.startswith("race:") for m in markers)


@pytest.mark.skipif(not has_module("ruff"), reason="ruff not installed ([lint] extra)")
@pytest.mark.parametrize(
    "package",
    ["src/repro/analysis", "src/repro/obs", "src/repro/parallel", "src/repro/faults"],
)
def test_ruff_clean_on_strict_packages(package):
    proc = subprocess.run(
        [sys.executable, "-m", "ruff", "check", package],
        cwd=REPO, capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(not has_module("mypy"), reason="mypy not installed ([lint] extra)")
@pytest.mark.parametrize(
    "package", ["repro.analysis", "repro.obs", "repro.parallel", "repro.faults"]
)
def test_mypy_clean_on_strict_packages(package):
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "-p", package],
        cwd=REPO, capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
