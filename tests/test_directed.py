"""Tests for directed-query matching (the cuTS query style).

The paper: "our system supports both directed and undirected graphs"
(Sec. VIII-A).  Directed matching is edge-induced; every engine must
agree with the reference oracle and with networkx's DiGraphMatcher.
"""

import numpy as np
import pytest

from repro import STMatchEngine, QueryGraph
from repro.baselines import CuTSEngine, DryadicEngine, count_matches_recursive
from repro.graph import CSRGraph
from repro.pattern import build_plan


def directed_graph(n=40, p=0.15, seed=3) -> CSRGraph:
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < p
    np.fill_diagonal(mask, False)
    arcs = np.argwhere(mask)
    return CSRGraph.from_edges(n, arcs, directed=True)


def count_via_networkx_directed(graph: CSRGraph, query: QueryGraph) -> int:
    import networkx as nx
    from networkx.algorithms.isomorphism import DiGraphMatcher

    gm = DiGraphMatcher(graph.to_networkx(), query.to_networkx())
    embeddings = sum(1 for _ in gm.subgraph_monomorphisms_iter())
    n_aut = len(query.automorphisms())
    assert embeddings % n_aut == 0
    return embeddings // n_aut


DIRECTED_QUERIES = [
    QueryGraph.from_arcs(3, [(0, 1), (1, 2), (2, 0)], name="cycle3d"),
    QueryGraph.from_arcs(3, [(0, 1), (0, 2)], name="outstar3"),
    QueryGraph.from_arcs(3, [(1, 0), (2, 0)], name="instar3"),
    QueryGraph.from_arcs(4, [(0, 1), (1, 2), (2, 3), (3, 0)], name="cycle4d"),
    QueryGraph.from_arcs(4, [(0, 1), (1, 2), (0, 2), (2, 3)], name="tri_tail_d"),
    QueryGraph.from_arcs(3, [(0, 1), (1, 0), (1, 2)], name="mutual_tail"),
]


class TestDirectedQueryGraph:
    def test_from_arcs(self):
        q = QueryGraph.from_arcs(3, [(0, 1), (1, 2)])
        assert q.directed
        assert q.adj[0, 1] and not q.adj[1, 0]

    def test_asymmetric_undirected_rejected(self):
        adj = np.zeros((2, 2), dtype=bool)
        adj[0, 1] = True
        with pytest.raises(ValueError):
            QueryGraph(adj=adj, directed=False)

    def test_directed_cycle_automorphisms(self):
        q = QueryGraph.from_arcs(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        # rotations only (no reflections): |Aut| = 4
        assert len(q.automorphisms()) == 4

    def test_direction_matters_for_equality(self):
        a = QueryGraph.from_arcs(2, [(0, 1)])
        b = QueryGraph.from_arcs(2, [(1, 0)])
        assert a != b

    def test_connects_both_ways(self):
        q = QueryGraph.from_arcs(2, [(0, 1)])
        assert q.connects(0, 1) and q.connects(1, 0)


class TestReversedView:
    def test_in_neighbors(self):
        g = CSRGraph.from_edges(3, [(0, 1), (2, 1)], directed=True)
        assert list(g.in_neighbors(1)) == [0, 2]
        assert g.in_neighbors(0).size == 0

    def test_reversed_cached(self):
        g = directed_graph()
        assert g.reversed_view() is g.reversed_view()

    def test_undirected_reversed_is_self(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        assert g.reversed_view() is g
        assert list(g.in_neighbors(1)) == list(g.neighbors(1))

    def test_reverse_roundtrip(self):
        g = directed_graph(25, 0.2, seed=8)
        rr = g.reversed_view().reversed_view()
        assert np.array_equal(rr.indptr, g.indptr)
        assert np.array_equal(rr.indices, g.indices)


class TestDirectedCounting:
    @pytest.fixture(scope="class")
    def g(self):
        return directed_graph()

    @pytest.mark.parametrize("q", DIRECTED_QUERIES, ids=lambda q: q.name)
    def test_oracle_matches_networkx(self, g, q):
        plan = build_plan(q, g)
        assert count_matches_recursive(g, plan) == count_via_networkx_directed(g, q)

    @pytest.mark.parametrize("q", DIRECTED_QUERIES, ids=lambda q: q.name)
    def test_stmatch_matches_oracle(self, g, q):
        eng = STMatchEngine(g)
        plan = eng.plan(q)
        assert eng.run(plan).matches == count_matches_recursive(g, plan)

    @pytest.mark.parametrize("q", DIRECTED_QUERIES[:4], ids=lambda q: q.name)
    def test_dryadic_and_cuts_agree(self, g, q):
        st = STMatchEngine(g).run(q)
        dr = DryadicEngine(g).run(q)
        assert st.matches == dr.matches
        cu = CuTSEngine(g).run(q)
        if cu.ok:
            assert cu.matches == st.matches

    def test_no_code_motion_agrees(self, g):
        from repro import EngineConfig

        q = DIRECTED_QUERIES[0]
        a = STMatchEngine(g, EngineConfig(code_motion=True)).run(q).matches
        b = STMatchEngine(g, EngineConfig(code_motion=False)).run(q).matches
        assert a == b

    def test_mutual_arc_needs_both_directions(self):
        # graph with only one direction cannot contain a mutual pair
        g1 = CSRGraph.from_edges(3, [(0, 1), (1, 2)], directed=True)
        q = QueryGraph.from_arcs(2, [(0, 1), (1, 0)])
        assert STMatchEngine(g1).run(q).matches == 0
        g2 = CSRGraph.from_edges(2, [(0, 1)], directed=True)
        # add the reverse arc
        g3 = CSRGraph.from_edges(2, np.array([[0, 1], [1, 0]]), directed=True)
        assert STMatchEngine(g3).run(q).matches == 1


class TestDirectedRestrictionsAndErrors:
    def test_vertex_induced_rejected(self):
        g = directed_graph()
        with pytest.raises(NotImplementedError):
            build_plan(DIRECTED_QUERIES[0], g, vertex_induced=True)

    def test_directed_query_on_undirected_graph_rejected(self):
        g = CSRGraph.from_edges(5, [(0, 1), (1, 2)])
        with pytest.raises(ValueError):
            build_plan(DIRECTED_QUERIES[0], g)

    def test_compact_encoding_rejects_directed(self):
        g = directed_graph()
        plan = build_plan(DIRECTED_QUERIES[0], g)
        with pytest.raises(ValueError):
            plan.program.to_compact()

    def test_symmetry_identity_directed(self):
        g = directed_graph()
        q = DIRECTED_QUERIES[3]  # directed 4-cycle, |Aut| = 4
        sub_plan = build_plan(q, g, symmetry_breaking=True)
        emb_plan = build_plan(q, g, symmetry_breaking=False)
        sub = count_matches_recursive(g, sub_plan)
        emb = count_matches_recursive(g, emb_plan)
        assert emb == 4 * sub
