"""Seeded-mutation gates for the overlay delta linter (D601–D605).

Mirrors the X-rule mutation tests in ``tests/test_analysis_races.py``:
each test corrupts a healthy overlay's delta arrays in one specific
way (bypassing construction-time validation) and asserts the linter
catches exactly that rule — a linter that stays silent on a seeded
corruption is itself broken.
"""

import numpy as np
import pytest

from repro.analysis import DiagnosticReport, Severity, lint_overlay
from repro.analysis.diagnostics import RULE_REGISTRY
from repro.analysis.overlay import KIND_TO_RULE
from repro.dynamic import EditBatch, OverlayGraph
from repro.graph.csr import CSRGraph

D_RULES = ["D601", "D602", "D603", "D604", "D605"]


def _base() -> CSRGraph:
    edges = [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (1, 5)]
    return CSRGraph.from_edges(6, edges, name="lintbase")


def _healthy() -> OverlayGraph:
    return OverlayGraph.from_edits(
        _base(), EditBatch.from_lists(inserts=[(0, 3)], deletes=[(2, 3)]))


def _corrupt(insert_arcs, delete_arcs) -> OverlayGraph:
    # validate=False is the test's corruption port: real construction
    # paths always validate
    return OverlayGraph(
        _base(),
        np.asarray(insert_arcs, dtype=np.int64).reshape(-1, 2),
        np.asarray(delete_arcs, dtype=np.int64).reshape(-1, 2),
        validate=False)


def _rules_of(report: DiagnosticReport) -> set[str]:
    return {d.rule for d in report}


def test_healthy_overlay_is_clean():
    report = lint_overlay(_healthy())
    assert len(report) == 0
    assert not report.has_errors


def test_unsorted_delta_trips_d601():
    # arcs present but out of lexicographic order
    ov = _corrupt([[3, 0], [0, 3]], [])
    assert "D601" in _rules_of(lint_overlay(ov))


def test_duplicate_arcs_trip_d601():
    ov = _corrupt([[0, 3], [0, 3], [3, 0]], [])
    assert "D601" in _rules_of(lint_overlay(ov))


def test_insert_delete_overlap_trips_d602():
    # same arc on both sides — delete-then-insert was never normalized
    ov = _corrupt([[2, 3], [3, 2]], [[2, 3], [3, 2]])
    report = lint_overlay(ov)
    assert "D602" in _rules_of(report)
    (diag,) = report.by_rule("D602")
    assert diag.severity is Severity.ERROR


def test_phantom_insert_trips_d603():
    # (0, 1) is already in the base — inserting it corrupts degrees
    ov = _corrupt([[0, 1], [1, 0]], [])
    assert "D603" in _rules_of(lint_overlay(ov))


def test_phantom_delete_trips_d603():
    # (0, 5) is absent from the base
    ov = _corrupt([], [[0, 5], [5, 0]])
    assert "D603" in _rules_of(lint_overlay(ov))


def test_one_directional_arc_trips_d604():
    # undirected overlay storing only (0, 3) without (3, 0)
    ov = _corrupt([[0, 3]], [])
    assert "D604" in _rules_of(lint_overlay(ov))


def test_out_of_range_endpoint_trips_d605():
    ov = _corrupt([[0, 99], [99, 0]], [])
    assert "D605" in _rules_of(lint_overlay(ov))


def test_self_loop_trips_d605():
    ov = _corrupt([[2, 2]], [])
    assert "D605" in _rules_of(lint_overlay(ov))


def test_validation_rejects_corruption_at_construction():
    with pytest.raises(ValueError, match="invalid overlay delta"):
        OverlayGraph(_base(),
                     np.asarray([[3, 0], [0, 3]], dtype=np.int64),
                     np.empty((0, 2), dtype=np.int64))


def test_every_violation_is_an_error():
    ov = _corrupt([[0, 1], [3, 0], [0, 3]], [[2, 2]])
    report = lint_overlay(ov)
    assert report.has_errors
    assert all(d.severity is Severity.ERROR for d in report)


@pytest.mark.parametrize("rule", D_RULES)
def test_d_rules_registered_with_fix_hints(rule):
    info = RULE_REGISTRY[rule]
    assert info.owner == "repro.analysis.overlay"
    assert info.summary and info.fix_hint


def test_kind_map_covers_exactly_the_d_rules():
    assert sorted(KIND_TO_RULE.values()) == D_RULES


def test_normalization_prevents_all_d_rules_by_construction():
    # the real construction path (from_edits) normalizes everything the
    # linter checks: throw a messy batch at it and lint stays clean
    g = _base()
    messy = EditBatch.from_lists(
        inserts=[(3, 0), (0, 1), (4, 0), (0, 4)],  # dup + already present
        deletes=[(3, 2), (0, 5), (0, 3)])  # absent + also-inserted
    ov = OverlayGraph.from_edits(g, messy)
    assert len(lint_overlay(ov)) == 0
