"""Tests for plan compilation details and the engine's fixed memory
footprint accounting (Sec. VIII-A)."""

import numpy as np
import pytest

from repro import EngineConfig, STMatchEngine, get_query
from repro.core.counters import RunStatus
from repro.graph import erdos_renyi, powerlaw_cluster
from repro.pattern import build_plan, get_query
from repro.virtgpu.device import DeviceConfig


class TestPlanCompilation:
    def test_plan_describe_mentions_everything(self):
        g = erdos_renyi(30, 0.3, seed=1)
        plan = build_plan(get_query("q8"), g)
        text = plan.describe()
        assert "order" in text and "sets" in text and "q8" in text

    def test_explicit_order_used(self):
        q = get_query("q7")
        order = [2, 0, 1, 3, 4]  # triangle first, connected
        plan = build_plan(q, order=order)
        assert plan.order == tuple(order)

    def test_bad_explicit_order_rejected(self):
        with pytest.raises(ValueError):
            build_plan(get_query("q1"), order=[0, 2, 1, 3, 4])  # disconnected step

    def test_exhaustive_strategy(self):
        g = erdos_renyi(30, 0.3, seed=1)
        plan = build_plan(get_query("q5"), g, order_strategy="exhaustive")
        assert len(plan.order) == 5

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            build_plan(get_query("q5"), order_strategy="magic")

    def test_restriction_floor(self):
        plan = build_plan(get_query("q8"))  # clique: total order
        floor = plan.restriction_floor(2, [10, 20])
        assert floor == 20

    def test_vertex_induced_plan_has_differences(self):
        from repro.codemotion import OpKind

        plan = build_plan(get_query("q1"), vertex_induced=True)
        kinds = {
            op.kind for r in plan.program.recipes for op in r.ops
        }
        assert OpKind.DIFFERENCE in kinds

    def test_edge_induced_plan_no_differences(self):
        from repro.codemotion import OpKind

        plan = build_plan(get_query("q1"), vertex_induced=False)
        kinds = {op.kind for r in plan.program.recipes for op in r.ops}
        assert OpKind.DIFFERENCE not in kinds

    def test_plan_num_sets_property(self):
        plan = build_plan(get_query("q16"))
        assert plan.num_sets == plan.program.num_sets


class TestFixedMemoryFootprint:
    def test_stmatch_allocation_is_fixed(self):
        """STMatch's memory does not grow with the number of matches."""
        from repro.core.candidates import CandidateComputer
        from repro.virtgpu.device import VirtualDevice

        g = powerlaw_cluster(100, m=4, seed=2)
        eng = STMatchEngine(g)
        plan = eng.plan(get_query("q7"))
        dev = VirtualDevice(eng.config.device)
        comp = CandidateComputer(g, plan, eng.config)
        eng._allocate_fixed_memory(dev, plan, comp)
        before = dev.global_mem.in_use
        from repro.core.kernel import run_kernel

        run_kernel(plan, eng.config, comp, dev)
        assert dev.global_mem.in_use == before  # nothing allocated mid-run

    def test_c_array_size_formula(self):
        """C = NUM_SETS × UNROLL × slot × NUM_WARPS × 4B (Sec. VIII-A)."""
        from repro.core.candidates import CandidateComputer
        from repro.virtgpu.device import VirtualDevice

        g = powerlaw_cluster(100, m=4, seed=2)
        cfg = EngineConfig()
        eng = STMatchEngine(g, cfg)
        plan = eng.plan(get_query("q8"))
        dev = VirtualDevice(cfg.device)
        comp = CandidateComputer(g, plan, cfg)
        eng._allocate_fixed_memory(dev, plan, comp)
        expected = (
            plan.num_sets * cfg.unroll * comp.slot_capacity * 4 * dev.num_warps
        )
        assert dev.global_mem.usage("stmatch.C") == expected

    def test_stmatch_oom_when_device_too_small(self):
        g = powerlaw_cluster(100, m=4, seed=2)
        cfg = EngineConfig(device=DeviceConfig(global_mem_bytes=1000))
        res = STMatchEngine(g, cfg).run(get_query("q7"))
        assert res.status == RunStatus.OOM

    def test_shared_memory_overflow_detected(self):
        """Tiny shared memory cannot hold the per-warp Csize arrays."""
        g = powerlaw_cluster(100, m=4, seed=2)
        cfg = EngineConfig(device=DeviceConfig(shared_mem_per_block=64))
        res = STMatchEngine(g, cfg).run(get_query("q16"))
        assert res.status == RunStatus.OOM

    def test_slot_capacity_clamped_to_graph_degree(self):
        from repro.core.candidates import CandidateComputer

        g = erdos_renyi(50, 0.2, seed=3)
        cfg = EngineConfig(max_degree=4096)
        comp = CandidateComputer(g, STMatchEngine(g, cfg).plan(get_query("q5")), cfg)
        assert comp.slot_capacity == g.max_degree()

    def test_host_spill_penalty_charged(self):
        """Sets longer than max_degree spill to host memory at a cost."""
        g = erdos_renyi(60, 0.5, seed=4)  # degrees ~30
        q = get_query("q5")
        fast = STMatchEngine(g, EngineConfig(max_degree=4096)).run(q)
        slow = STMatchEngine(g, EngineConfig(max_degree=4)).run(q)
        assert slow.matches == fast.matches
        assert slow.cycles > fast.cycles


class TestDegreeFilter:
    """The optional degree-pruning extension must never change counts."""

    @pytest.mark.parametrize("name", ["q1", "q5", "q7", "q8", "q13"])
    @pytest.mark.parametrize("vi", [False, True])
    def test_counts_invariant(self, name, vi):
        g = powerlaw_cluster(90, m=3, p_triangle=0.5, seed=6)
        q = get_query(name)
        base = STMatchEngine(g, EngineConfig()).run(q, vertex_induced=vi)
        filt = STMatchEngine(g, EngineConfig(degree_filter=True)).run(q, vertex_induced=vi)
        assert filt.matches == base.matches

    def test_prunes_work_on_dense_queries(self):
        # a clique query on a skewed graph: low-degree candidates are
        # pruned before their subtrees are explored
        g = powerlaw_cluster(150, m=4, p_triangle=0.6, seed=9)
        q = get_query("q16")
        base = STMatchEngine(g, EngineConfig()).run(q)
        filt = STMatchEngine(g, EngineConfig(degree_filter=True)).run(q)
        assert filt.matches == base.matches
        assert filt.counters.tree_nodes <= base.counters.tree_nodes

    def test_labeled_counts_invariant(self):
        import numpy as np

        from repro.graph import assign_random_labels
        from repro.graph.labels import relabel_query_consistently

        g = assign_random_labels(powerlaw_cluster(80, m=3, seed=2), num_labels=3, seed=1)
        q = get_query("q5").with_labels(
            relabel_query_consistently(np.array([0, 1, 2, 0, 1]), g, seed=5)
        )
        base = STMatchEngine(g, EngineConfig()).run(q)
        filt = STMatchEngine(g, EngineConfig(degree_filter=True)).run(q)
        assert filt.matches == base.matches


class TestMultiGpu:
    def test_counts_partition_exactly(self):
        from repro import run_multi_gpu

        g = powerlaw_cluster(120, m=4, seed=6)
        q = get_query("q7")
        single = STMatchEngine(g).run(q)
        for nd in (2, 3, 4):
            multi = run_multi_gpu(g, q, nd)
            assert multi.matches == single.matches, nd

    def test_makespan_is_max_device(self):
        from repro import run_multi_gpu

        g = powerlaw_cluster(120, m=4, seed=6)
        res = run_multi_gpu(g, get_query("q5"), 3)
        assert res.sim_ms == max(r.sim_ms for r in res.per_device)

    def test_multi_gpu_speedup_on_balanced_input(self):
        from repro import run_multi_gpu
        from repro.graph import powerlaw_cluster

        # needs enough work that the fixed launch cost does not floor
        # the single-device time
        g = powerlaw_cluster(400, m=5, p_triangle=0.6, seed=1)
        q = get_query("q7")
        r1 = run_multi_gpu(g, q, 1)
        r4 = run_multi_gpu(g, q, 4)
        assert r4.matches == r1.matches
        assert r4.sim_ms < r1.sim_ms  # some speedup

    def test_invalid_device_count(self):
        from repro import run_multi_gpu

        g = erdos_renyi(20, 0.2, seed=1)
        with pytest.raises(ValueError):
            run_multi_gpu(g, get_query("q5"), 0)
