"""Unit tests for synthetic graph generators and datasets."""

import numpy as np
import pytest

from repro.graph import (
    chung_lu,
    compute_stats,
    dataset_names,
    degree_histogram,
    erdos_renyi,
    load_dataset,
    powerlaw_cluster,
    random_regular_ish,
    rmat,
)


class TestGenerators:
    def test_erdos_renyi_determinism(self):
        a = erdos_renyi(50, 0.1, seed=1)
        b = erdos_renyi(50, 0.1, seed=1)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.indptr, b.indptr)

    def test_erdos_renyi_seed_changes_graph(self):
        a = erdos_renyi(50, 0.1, seed=1)
        b = erdos_renyi(50, 0.1, seed=2)
        assert not (np.array_equal(a.indices, b.indices) and a.num_edges == b.num_edges)

    def test_erdos_renyi_density(self):
        g = erdos_renyi(100, 0.2, seed=0)
        expected = 0.2 * 100 * 99 / 2
        assert 0.7 * expected < g.num_edges < 1.3 * expected

    def test_erdos_renyi_p_bounds(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 1.5)

    def test_rmat_shape(self):
        g = rmat(7, edge_factor=4, seed=3)
        assert g.num_vertices == 128
        assert g.num_edges > 100
        # R-MAT with Graph500 params is skewed
        assert g.max_degree() > 4 * g.median_degree()

    def test_rmat_bad_params(self):
        with pytest.raises(ValueError):
            rmat(5, a=0.5, b=0.4, c=0.3)

    def test_chung_lu_power_law(self):
        g = chung_lu(300, avg_degree=6.0, exponent=2.3, seed=5)
        deg = g.degree()
        assert deg.max() > 3 * np.median(deg)

    def test_powerlaw_cluster_validates(self):
        g = powerlaw_cluster(120, m=4, p_triangle=0.5, seed=7)
        g.validate()
        assert g.num_vertices == 120
        assert g.num_edges >= 4 * (120 - 5)

    def test_powerlaw_cluster_bad_m(self):
        with pytest.raises(ValueError):
            powerlaw_cluster(10, m=10)

    def test_powerlaw_cluster_has_triangles(self):
        g = powerlaw_cluster(100, m=3, p_triangle=0.9, seed=1)
        # count triangles crudely via networkx
        import networkx as nx

        assert sum(nx.triangles(g.to_networkx()).values()) > 0

    def test_random_regular_ish_degrees(self):
        g = random_regular_ish(100, 6, seed=2)
        deg = g.degree()
        # near-regular: small spread
        assert deg.max() - deg.min() <= 6

    def test_random_regular_degree_bound(self):
        with pytest.raises(ValueError):
            random_regular_ish(5, 5)


class TestDatasets:
    def test_registry_names(self):
        names = dataset_names()
        for expected in ["wiki_vote", "enron", "youtube", "mico",
                         "livejournal", "orkut", "friendster"]:
            assert expected in names

    def test_tier_filter(self):
        assert "orkut" in dataset_names(tier="large")
        assert "wiki_vote" not in dataset_names(tier="large")

    def test_load_is_cached(self):
        a = load_dataset("wiki_vote", "tiny")
        b = load_dataset("wiki_vote", "tiny")
        assert a is b

    def test_mico_is_labeled(self):
        g = load_dataset("mico", "tiny")
        assert g.is_labeled
        assert g.num_labels == 10

    def test_labeled_override(self):
        g = load_dataset("wiki_vote", "tiny", labeled=True)
        assert g.is_labeled
        g2 = load_dataset("mico", "tiny", labeled=False)
        assert not g2.is_labeled

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("nope")

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            load_dataset("wiki_vote", scale="huge")

    def test_median_degree_below_warp_width(self):
        # Table I property the loop-unrolling motivation relies on
        for name in ["wiki_vote", "enron", "youtube"]:
            g = load_dataset(name, "tiny")
            assert g.median_degree() < 32


class TestStats:
    def test_compute_stats_fields(self):
        g = load_dataset("wiki_vote", "tiny")
        s = compute_stats(g)
        assert s.num_vertices == g.num_vertices
        assert s.num_edges == g.num_edges
        assert s.max_degree == g.max_degree()
        assert 0.0 <= s.frac_degree_over <= 1.0

    def test_degree_cap_fraction(self):
        g = erdos_renyi(50, 0.5, seed=0)
        s = compute_stats(g, degree_cap=1)
        assert s.frac_degree_over > 0.9

    def test_degree_histogram_sums_to_n(self):
        g = erdos_renyi(60, 0.1, seed=4)
        h = degree_histogram(g)
        assert h.sum() == g.num_vertices

    def test_stats_row_format(self):
        s = compute_stats(load_dataset("enron", "tiny"))
        row = s.row()
        assert row[0] == "enron"
        assert row[-1].endswith("%")
