"""Unit tests for matching orders and symmetry breaking."""

import numpy as np
import pytest

from repro.graph import erdos_renyi
from repro.pattern import (
    QueryGraph,
    build_plan,
    exhaustive_order,
    get_query,
    greedy_order,
    is_connected_order,
    num_automorphisms,
    partial_order_matrix,
    restrictions_by_level,
    restrictions_for,
    validate_order,
)
from repro.baselines import count_matches_recursive, count_via_networkx


class TestMatchingOrder:
    @pytest.mark.parametrize("name", ["q1", "q2", "q5", "q8", "q10", "q13", "q15"])
    def test_greedy_order_connected(self, name):
        q = get_query(name)
        order = greedy_order(q)
        assert is_connected_order(q, order)
        assert sorted(order) == list(range(q.size))

    def test_greedy_starts_dense(self):
        q = get_query("q7")  # triangle with tail: triangle vertex has deg 3
        order = greedy_order(q)
        degs = [q.degree(u) for u in range(q.size)]
        assert q.degree(order[0]) == max(degs)

    @pytest.mark.parametrize("name", ["q1", "q5", "q8"])
    def test_exhaustive_order_connected(self, name):
        q = get_query(name)
        order = exhaustive_order(q)
        assert is_connected_order(q, order)

    def test_exhaustive_prefers_dense_start_for_cliquish(self):
        # the cost model must never start a clique query from a leaf of
        # a tailed pattern — check q7: starting in the triangle is cheaper
        q = get_query("q7")
        order = exhaustive_order(q, avg_degree=8, num_vertices=1000)
        tri = {0, 1, 2}
        assert order[0] in tri and order[1] in tri

    def test_validate_order_rejects_disconnected(self):
        q = get_query("q1")  # path 0-1-2-3-4
        with pytest.raises(ValueError):
            validate_order(q, [0, 4, 1, 2, 3])

    def test_validate_order_rejects_nonperm(self):
        with pytest.raises(ValueError):
            validate_order(get_query("q1"), [0, 0, 1, 2, 3])

    def test_label_rarity_tiebreak(self):
        q = QueryGraph.cycle(4).with_labels([0, 1, 0, 1])
        freq = np.array([100, 2])  # label 1 is rare
        order = greedy_order(q, label_frequency=freq)
        assert q.labels[order[0]] == 1


class TestRestrictions:
    @pytest.mark.parametrize("factory", [
        lambda: QueryGraph.clique(4),
        lambda: QueryGraph.cycle(5),
        lambda: QueryGraph.path(4),
        lambda: QueryGraph.star(4),
        lambda: get_query("q5"),
        lambda: get_query("q13"),
    ])
    def test_restrictions_point_forward(self, factory):
        q = factory()
        for i, j in restrictions_for(q):
            assert i < j

    def test_clique_total_order(self):
        # a k-clique's restrictions must force a strictly increasing match
        q = QueryGraph.clique(5)
        by_level = restrictions_by_level(q)
        for j in range(1, 5):
            assert j - 1 in by_level[j]

    def test_path_single_restriction(self):
        # path 0-1-2 relabeled in order has Aut = {id, reverse}: 1 orbit pair
        q = QueryGraph.path(3).relabeled([1, 0, 2])  # center first: connected order
        rs = restrictions_for(q)
        assert len(rs) == 1

    def test_asymmetric_query_no_restrictions(self):
        # q7's triangle+tail in matching order: only trivial symmetry...
        q = get_query("q7")
        order = greedy_order(q)
        rq = q.relabeled(order)
        n_aut = num_automorphisms(rq)
        rs = restrictions_for(rq)
        if n_aut == 1:
            assert rs == []

    def test_partial_order_matrix_consistent(self):
        q = QueryGraph.clique(4)
        m = partial_order_matrix(q)
        assert m.sum() == len(restrictions_for(q))

    def test_labels_reduce_restrictions(self):
        unl = QueryGraph.clique(3)
        lab = unl.with_labels([0, 0, 1])
        assert len(restrictions_for(lab)) < len(restrictions_for(unl))


class TestCountingIdentity:
    """The defining property: restricted count == embeddings / |Aut|."""

    @pytest.mark.parametrize("name", ["q1", "q2", "q3", "q5", "q7", "q8"])
    @pytest.mark.parametrize("vertex_induced", [False, True])
    def test_subgraphs_equal_embeddings_over_aut(self, name, vertex_induced):
        g = erdos_renyi(24, 0.3, seed=11)
        q = get_query(name)
        plan_sb = build_plan(q, g, vertex_induced=vertex_induced, symmetry_breaking=True)
        plan_em = build_plan(q, g, vertex_induced=vertex_induced, symmetry_breaking=False)
        sub = count_matches_recursive(g, plan_sb)
        emb = count_matches_recursive(g, plan_em)
        n_aut = num_automorphisms(q)
        assert emb == sub * n_aut

    def test_against_networkx_labeled(self):
        g = erdos_renyi(22, 0.35, seed=7).with_labels(
            np.arange(22) % 3
        )
        q = QueryGraph.cycle(4).with_labels([0, 1, 0, 1])
        plan = build_plan(q, g, vertex_induced=True)
        assert count_matches_recursive(g, plan) == count_via_networkx(g, q, vertex_induced=True)
