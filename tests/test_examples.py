"""Smoke tests: every example script must run end to end.

Examples are executed in-process (importing their ``main``) against the
cached tiny/small datasets; stdout is captured, so failures surface as
exceptions, not prints.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, monkeypatch, capsys) -> str:
    path = EXAMPLES / f"{name}.py"
    assert path.exists(), path
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        out = run_example("quickstart", monkeypatch, capsys)
        assert "matches found" in out
        assert "plan for q7" in out

    def test_motif_counting(self, monkeypatch, capsys):
        out = run_example("motif_counting", monkeypatch, capsys)
        assert "clique" in out
        assert "total vertex-induced 4-motifs" in out

    def test_labeled_social_network(self, monkeypatch, capsys):
        out = run_example("labeled_social_network", monkeypatch, capsys)
        assert "stmatch" in out and "gsi" in out and "dryadic" in out

    def test_distributed_cluster(self, monkeypatch, capsys):
        out = run_example("distributed_cluster", monkeypatch, capsys)
        assert "cluster shape sweep" in out
        assert "network sensitivity" in out
