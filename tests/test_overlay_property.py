"""OverlayGraph read-API equivalence, property-tested.

An overlay must be observationally identical to the CSR it denotes:
for random base graphs and random edit batches, every read method
(`neighbors`, `neighbors_batch`, `degree`, `has_edge`,
`adjacency_bitmap`, `max_degree`, `edges`, labels) agrees byte-for-byte
with (a) ``compact()``'s freshly merged CSR and (b) a CSR built
independently from the mutated edge list — and the engine itself
produces identical matches *and cycles* on either representation for
the q1–q13 mix (the overlay is not allowed to change the simulated
schedule, only the storage).
"""

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import STMatchEngine
from repro.dynamic import EditBatch, OverlayGraph, overlaid
from repro.graph.csr import CSRGraph
from repro.graph.labels import assign_random_labels
from repro.pattern import QUERIES

PROPERTY_SEEDS = range(12)
QUERY_NAMES = [f"q{i}" for i in range(1, 14)]


def _random_graph(seed: int, n: int = 22, density: float = 0.25) -> CSRGraph:
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < density
    edges = [(i, j) for i in range(n) for j in range(i + 1, n) if mask[i, j]]
    g = CSRGraph.from_edges(n, edges, name=f"rand{seed}")
    if seed % 3 == 0:
        g = assign_random_labels(g, num_labels=3, seed=seed)
    return g


def _random_batch(g: CSRGraph, seed: int,
                  nd: int = 4, ni: int = 4) -> EditBatch:
    rng = np.random.default_rng(seed + 500)
    existing = sorted((min(u, v), max(u, v)) for u, v in g.edges())
    k = min(nd, len(existing))
    picks = rng.choice(len(existing), k, replace=False) if k else []
    deletes = [existing[int(i)] for i in picks]
    inserts = []
    present = set(existing)
    tries = 0
    while len(inserts) < ni and tries < 400:
        tries += 1
        u, v = sorted(int(x) for x in rng.integers(0, g.num_vertices, 2))
        if u != v and (u, v) not in present and (u, v) not in inserts:
            inserts.append((u, v))
    return EditBatch.from_lists(inserts=inserts, deletes=deletes)


def _independent_csr(g: CSRGraph, batch: EditBatch) -> CSRGraph:
    """The mutated graph built WITHOUT the overlay machinery."""
    eff = batch.normalized_against(g)
    edges = {(min(u, v), max(u, v)) for u, v in g.edges()}
    edges -= {tuple(e) for e in eff.deletes.tolist()}
    edges |= {tuple(e) for e in eff.inserts.tolist()}
    return CSRGraph.from_edges(g.num_vertices, sorted(edges),
                               labels=g.labels, name=g.name)


def _assert_reads_identical(ov: OverlayGraph, ref: CSRGraph) -> None:
    n = ref.num_vertices
    assert ov.num_vertices == n
    assert ov.num_edges == ref.num_edges
    assert ov.is_labeled == ref.is_labeled
    assert ov.num_labels == ref.num_labels
    assert np.array_equal(np.asarray(ov.degree()), np.asarray(ref.degree()))
    assert ov.max_degree() == ref.max_degree()
    assert ov.median_degree() == ref.median_degree()
    for v in range(n):
        assert np.array_equal(ov.neighbors(v), ref.neighbors(v)), v
        assert ov.neighbors(v).dtype == ref.neighbors(v).dtype
        assert int(ov.degree(v)) == int(ref.degree(v))
    vs = np.arange(n, dtype=np.int64)
    oval, ooff = ov.neighbors_batch(vs)
    rval, roff = ref.neighbors_batch(vs)
    assert np.array_equal(oval, rval) and np.array_equal(ooff, roff)
    rng = np.random.default_rng(0)
    for _ in range(200):
        u, v = (int(x) for x in rng.integers(0, n, 2))
        assert ov.has_edge(u, v) == ref.has_edge(u, v), (u, v)
    thr = max(1, int(np.asarray(ref.degree()).mean()))
    ob, rb = ov.adjacency_bitmap(thr), ref.adjacency_bitmap(thr)
    assert sorted(ob) == sorted(rb)
    for k in rb:
        assert np.array_equal(ob[k], rb[k])
    assert sorted(ov.edges()) == sorted(ref.edges())
    if ref.is_labeled:
        for lab in range(ref.num_labels):
            assert np.array_equal(ov.vertices_with_label(lab),
                                  ref.vertices_with_label(lab))


class TestReadEquivalence:
    @pytest.mark.parametrize("seed", PROPERTY_SEEDS)
    def test_overlay_reads_equal_compacted_and_independent(self, seed):
        g = _random_graph(seed)
        batch = _random_batch(g, seed)
        ov = OverlayGraph.from_edits(g, batch)
        compacted = ov.compact()
        independent = _independent_csr(g, batch)
        _assert_reads_identical(ov, compacted)
        _assert_reads_identical(ov, independent)

    @pytest.mark.parametrize("seed", PROPERTY_SEEDS)
    def test_composition_equals_sequential_batches(self, seed):
        # with_edits composes over the same base; two stacked batches
        # must denote the same graph as applying them one at a time to
        # independently rebuilt CSRs
        g = _random_graph(seed)
        b1 = _random_batch(g, seed)
        mid = _independent_csr(g, b1)
        b2 = _random_batch(mid, seed + 77)
        ov = overlaid(overlaid(g, b1), b2)
        assert ov.base is g  # composition, not nesting
        _assert_reads_identical(ov, _independent_csr(mid, b2))

    def test_untouched_rows_are_zero_copy(self):
        g = _random_graph(1)
        ov = OverlayGraph.from_edits(
            g, EditBatch.from_lists(deletes=[next(iter(g.edges()))]))
        untouched = [v for v in range(g.num_vertices)
                     if not ov._touched[v]]
        assert untouched, "delta this small must leave rows untouched"
        v = untouched[0]
        assert ov.neighbors(v) is g.neighbors(v) or np.shares_memory(
            ov.neighbors(v), g.neighbors(v))

    def test_empty_batch_roundtrip(self):
        g = _random_graph(2)
        ov = OverlayGraph.from_edits(g, EditBatch.from_lists())
        _assert_reads_identical(ov, g)


class TestEngineOnOverlay:
    @pytest.mark.parametrize("qname", QUERY_NAMES)
    def test_matches_and_cycles_identical(self, qname):
        g = _random_graph(3)
        batch = _random_batch(g, 3)
        ov = OverlayGraph.from_edits(g, batch)
        compacted = ov.compact()
        q = QUERIES[qname]
        cfg = EngineConfig()
        a = STMatchEngine(ov, cfg).run(q)
        b = STMatchEngine(compacted, cfg).run(q)
        assert a.matches == b.matches
        assert a.cycles == b.cycles  # identical storage-level schedule
        assert a.status == b.status
