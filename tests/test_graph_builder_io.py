"""Unit tests for GraphBuilder and graph IO."""

import io

import numpy as np
import pytest

from repro.graph import GraphBuilder, load_labeled_graph, load_npz, load_snap_edgelist, save_npz
from repro.graph.io import dumps_edgelist


class TestGraphBuilder:
    def test_add_edges_and_build(self):
        g = GraphBuilder().add_edge(0, 1).add_edge(1, 2).build("t")
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.name == "t"

    def test_bulk_add(self):
        b = GraphBuilder()
        b.add_edges(np.array([[0, 1], [2, 3], [1, 2]]))
        assert b.num_pending_edges == 3
        g = b.build()
        assert g.num_edges == 3

    def test_labels(self):
        b = GraphBuilder().add_edge(0, 1)
        b.set_label(0, 5).set_label(1, 2)
        g = b.build()
        assert g.label_of(0) == 5
        assert g.label_of(1) == 2

    def test_label_creates_isolated_vertex(self):
        b = GraphBuilder().add_edge(0, 1).set_label(4, 1)
        g = b.build()
        assert g.num_vertices == 5
        assert g.degree(4) == 0

    def test_compact_ids(self):
        b = GraphBuilder(compact_ids=True)
        b.add_edge(100, 200).add_edge(200, 300)
        g = b.build()
        assert g.num_vertices == 3
        assert b.id_map == {100: 0, 200: 1, 300: 2}
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_explicit_n(self):
        g = GraphBuilder().add_edge(0, 1).set_num_vertices(10).build()
        assert g.num_vertices == 10

    def test_explicit_n_too_small(self):
        with pytest.raises(ValueError):
            GraphBuilder().add_edge(0, 5).set_num_vertices(3).build()

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            GraphBuilder().add_edge(-1, 0).build()

    def test_negative_label_rejected(self):
        with pytest.raises(ValueError):
            GraphBuilder().set_label(0, -2)

    def test_empty_build(self):
        g = GraphBuilder().build()
        assert g.num_vertices == 0


class TestSnapLoader:
    def test_basic_parse(self):
        text = "# comment\n% another\n0 1\n1 2\n2 0\n"
        g = load_snap_edgelist(io.StringIO(text))
        assert g.num_vertices == 3
        assert g.num_edges == 3

    def test_sparse_ids_compacted(self):
        g = load_snap_edgelist(io.StringIO("10 30\n30 50\n"))
        assert g.num_vertices == 3

    def test_directed(self):
        g = load_snap_edgelist(io.StringIO("0 1\n"), directed=True, compact_ids=False)
        assert g.has_edge(0, 1) and not g.has_edge(1, 0)

    def test_roundtrip_via_dumps(self):
        g = load_snap_edgelist(io.StringIO("0 1\n1 2\n"))
        text = dumps_edgelist(g)
        g2 = load_snap_edgelist(io.StringIO(text))
        assert sorted(g2.edges()) == sorted(g.edges())


class TestLabeledLoader:
    def test_v_e_format(self):
        text = "t # 0\nv 0 1\nv 1 2\nv 2 1\ne 0 1\ne 1 2\n"
        g = load_labeled_graph(io.StringIO(text))
        assert g.num_vertices == 3
        assert g.label_of(1) == 2
        assert g.has_edge(0, 1)

    def test_bad_record_rejected(self):
        with pytest.raises(ValueError):
            load_labeled_graph(io.StringIO("x 1 2\n"))

    def test_short_vertex_line_rejected(self):
        with pytest.raises(ValueError):
            load_labeled_graph(io.StringIO("v 0\n"))


class TestNpz:
    def test_roundtrip(self, tmp_path):
        from repro.graph import CSRGraph

        g = CSRGraph.from_edges(4, [(0, 1), (2, 3)], labels=[0, 1, 0, 1], name="rt")
        p = tmp_path / "g.npz"
        save_npz(g, p)
        g2 = load_npz(p)
        assert g2.name == "rt"
        assert sorted(g2.edges()) == sorted(g.edges())
        assert np.array_equal(g2.labels, g.labels)

    def test_unlabeled_roundtrip(self, tmp_path):
        from repro.graph import CSRGraph

        g = CSRGraph.from_edges(3, [(0, 2)], directed=True)
        p = tmp_path / "g.npz"
        save_npz(g, p)
        g2 = load_npz(p)
        assert g2.directed
        assert g2.labels is None
