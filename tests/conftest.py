"""Shared fixtures for the test suite.

The autouse session fixture below registers the static plan verifier
(:mod:`repro.analysis.verify`) as a plan observer: every plan compiled
by any test — through ``build_plan`` directly or via an engine — is
verified, and any ERROR-severity diagnostic fails the test that built
it.  This turns the whole suite into a fuzzer for the planner: a
regression in code motion, symmetry breaking or label merging surfaces
as a structured diagnostic at build time, not as a wrong count three
layers later.
"""

from __future__ import annotations

import pytest

from repro.analysis.verify import verify_plan
from repro.pattern.plan import add_plan_observer, remove_plan_observer


def _verify_built_plan(plan) -> None:
    verify_plan(plan).raise_if_errors()


@pytest.fixture(scope="session", autouse=True)
def verify_all_plans():
    """Verify every plan built anywhere in the test session."""
    add_plan_observer(_verify_built_plan)
    try:
        yield
    finally:
        remove_plan_observer(_verify_built_plan)
