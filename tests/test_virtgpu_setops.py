"""Unit + property tests for warp-parallel set operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.virtgpu import (
    Warp,
    combined_set_op,
    combined_set_op_lockstep,
    single_set_op,
)


def sorted_unique(draw_list):
    return np.array(sorted(set(draw_list)), dtype=np.int64)


sets_strategy = st.lists(
    st.tuples(
        st.lists(st.integers(0, 60), max_size=20),
        st.lists(st.integers(0, 60), max_size=20),
        st.booleans(),
    ),
    min_size=1,
    max_size=8,
)


class TestSingleOp:
    def test_intersection(self):
        a = np.array([1, 3, 5, 7])
        b = np.array([3, 4, 5])
        assert list(single_set_op(None, a, b)) == [3, 5]

    def test_difference(self):
        a = np.array([1, 3, 5, 7])
        b = np.array([3, 4, 5])
        assert list(single_set_op(None, a, b, difference=True)) == [1, 7]

    def test_empty_input(self):
        out = single_set_op(None, np.array([], dtype=int), np.array([1, 2]))
        assert out.size == 0

    def test_empty_operand_intersection(self):
        out = single_set_op(None, np.array([1, 2]), np.array([], dtype=int))
        assert out.size == 0

    def test_empty_operand_difference(self):
        out = single_set_op(None, np.array([1, 2]), np.array([], dtype=int), difference=True)
        assert list(out) == [1, 2]


class TestCombinedOp:
    def test_mixed_kinds(self):
        res = combined_set_op(
            None,
            [np.array([1, 2, 3]), np.array([2, 4, 6])],
            [np.array([2, 3]), np.array([4])],
            [False, True],
        )
        assert list(res[0]) == [2, 3]
        assert list(res[1]) == [2, 6]

    def test_misaligned_args(self):
        with pytest.raises(ValueError):
            combined_set_op(None, [np.array([1])], [np.array([1])], [False, True])

    def test_cost_charged_once_for_batch(self):
        w = Warp(warp_id=0, block_id=0)
        combined_set_op(
            w,
            [np.arange(10), np.arange(10)],
            [np.arange(5), np.arange(5)],
            [False, False],
        )
        assert w.counters.set_ops == 1
        assert w.counters.busy_lanes == 20
        assert w.counters.rounds == 1  # 20 elements fit one 32-lane round

    def test_unroll_cost_advantage(self):
        """Eight 4-element ops combined use 1 round; separate use 8."""
        sets = [np.arange(4) for _ in range(8)]
        ops = [np.arange(2) for _ in range(8)]
        w_comb = Warp(warp_id=0, block_id=0)
        combined_set_op(w_comb, sets, ops, [False] * 8)
        w_sep = Warp(warp_id=1, block_id=0)
        for s, o in zip(sets, ops):
            combined_set_op(w_sep, [s], [o], [False])
        assert w_comb.counters.rounds == 1
        assert w_sep.counters.rounds == 8
        assert w_comb.counters.thread_utilization > w_sep.counters.thread_utilization
        assert w_comb.clock < w_sep.clock

    @given(sets_strategy)
    @settings(max_examples=80)
    def test_matches_numpy_reference(self, spec):
        inputs = [sorted_unique(a) for a, _, _ in spec]
        operands = [sorted_unique(b) for _, b, _ in spec]
        kinds = [d for _, _, d in spec]
        res = combined_set_op(None, inputs, operands, kinds)
        for i in range(len(spec)):
            expected = (
                np.setdiff1d(inputs[i], operands[i])
                if kinds[i]
                else np.intersect1d(inputs[i], operands[i])
            )
            assert np.array_equal(res[i], expected)

    @given(sets_strategy)
    @settings(max_examples=40)
    def test_lockstep_equals_fast_path(self, spec):
        """The Fig. 8 lane-by-lane reference and the vectorized
        production path must agree exactly."""
        inputs = [sorted_unique(a) for a, _, _ in spec]
        operands = [sorted_unique(b) for _, b, _ in spec]
        kinds = [d for _, _, d in spec]
        fast = combined_set_op(None, inputs, operands, kinds)
        slow = combined_set_op_lockstep(None, inputs, operands, kinds)
        for f, s in zip(fast, slow):
            assert np.array_equal(f, s)

    def test_lockstep_multi_round(self):
        """More than 32 total elements spans several warp rounds."""
        inputs = [np.arange(0, 100, 2), np.arange(1, 99, 2)]
        operands = [np.arange(0, 100, 4), np.arange(1, 99, 8)]
        fast = combined_set_op(None, inputs, operands, [False, True])
        slow = combined_set_op_lockstep(None, inputs, operands, [False, True])
        for f, s in zip(fast, slow):
            assert np.array_equal(f, s)

    def test_results_stay_sorted_unique(self):
        res = combined_set_op(
            None, [np.array([1, 5, 9, 12])], [np.array([1, 9, 12])], [False]
        )[0]
        assert np.array_equal(res, np.unique(res))
