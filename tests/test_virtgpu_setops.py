"""Unit + property tests for warp-parallel set operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.virtgpu import (
    Warp,
    combined_set_op,
    combined_set_op_batch,
    combined_set_op_lockstep,
    membership_batch,
    single_set_op,
)


def sorted_unique(draw_list):
    return np.array(sorted(set(draw_list)), dtype=np.int64)


sets_strategy = st.lists(
    st.tuples(
        st.lists(st.integers(0, 60), max_size=20),
        st.lists(st.integers(0, 60), max_size=20),
        st.booleans(),
    ),
    min_size=1,
    max_size=8,
)


class TestSingleOp:
    def test_intersection(self):
        a = np.array([1, 3, 5, 7])
        b = np.array([3, 4, 5])
        assert list(single_set_op(None, a, b)) == [3, 5]

    def test_difference(self):
        a = np.array([1, 3, 5, 7])
        b = np.array([3, 4, 5])
        assert list(single_set_op(None, a, b, difference=True)) == [1, 7]

    def test_empty_input(self):
        out = single_set_op(None, np.array([], dtype=int), np.array([1, 2]))
        assert out.size == 0

    def test_empty_operand_intersection(self):
        out = single_set_op(None, np.array([1, 2]), np.array([], dtype=int))
        assert out.size == 0

    def test_empty_operand_difference(self):
        out = single_set_op(None, np.array([1, 2]), np.array([], dtype=int), difference=True)
        assert list(out) == [1, 2]


class TestCombinedOp:
    def test_mixed_kinds(self):
        res = combined_set_op(
            None,
            [np.array([1, 2, 3]), np.array([2, 4, 6])],
            [np.array([2, 3]), np.array([4])],
            [False, True],
        )
        assert list(res[0]) == [2, 3]
        assert list(res[1]) == [2, 6]

    def test_misaligned_args(self):
        with pytest.raises(ValueError):
            combined_set_op(None, [np.array([1])], [np.array([1])], [False, True])

    def test_cost_charged_once_for_batch(self):
        w = Warp(warp_id=0, block_id=0)
        combined_set_op(
            w,
            [np.arange(10), np.arange(10)],
            [np.arange(5), np.arange(5)],
            [False, False],
        )
        assert w.counters.set_ops == 1
        assert w.counters.busy_lanes == 20
        assert w.counters.rounds == 1  # 20 elements fit one 32-lane round

    def test_unroll_cost_advantage(self):
        """Eight 4-element ops combined use 1 round; separate use 8."""
        sets = [np.arange(4) for _ in range(8)]
        ops = [np.arange(2) for _ in range(8)]
        w_comb = Warp(warp_id=0, block_id=0)
        combined_set_op(w_comb, sets, ops, [False] * 8)
        w_sep = Warp(warp_id=1, block_id=0)
        for s, o in zip(sets, ops):
            combined_set_op(w_sep, [s], [o], [False])
        assert w_comb.counters.rounds == 1
        assert w_sep.counters.rounds == 8
        assert w_comb.counters.thread_utilization > w_sep.counters.thread_utilization
        assert w_comb.clock < w_sep.clock

    @given(sets_strategy)
    @settings(max_examples=80)
    def test_matches_numpy_reference(self, spec):
        inputs = [sorted_unique(a) for a, _, _ in spec]
        operands = [sorted_unique(b) for _, b, _ in spec]
        kinds = [d for _, _, d in spec]
        res = combined_set_op(None, inputs, operands, kinds)
        for i in range(len(spec)):
            expected = (
                np.setdiff1d(inputs[i], operands[i])
                if kinds[i]
                else np.intersect1d(inputs[i], operands[i])
            )
            assert np.array_equal(res[i], expected)

    @given(sets_strategy)
    @settings(max_examples=40)
    def test_lockstep_equals_fast_path(self, spec):
        """The Fig. 8 lane-by-lane reference and the vectorized
        production path must agree exactly."""
        inputs = [sorted_unique(a) for a, _, _ in spec]
        operands = [sorted_unique(b) for _, b, _ in spec]
        kinds = [d for _, _, d in spec]
        fast = combined_set_op(None, inputs, operands, kinds)
        slow = combined_set_op_lockstep(None, inputs, operands, kinds)
        for f, s in zip(fast, slow):
            assert np.array_equal(f, s)

    def test_lockstep_multi_round(self):
        """More than 32 total elements spans several warp rounds."""
        inputs = [np.arange(0, 100, 2), np.arange(1, 99, 2)]
        operands = [np.arange(0, 100, 4), np.arange(1, 99, 8)]
        fast = combined_set_op(None, inputs, operands, [False, True])
        slow = combined_set_op_lockstep(None, inputs, operands, [False, True])
        for f, s in zip(fast, slow):
            assert np.array_equal(f, s)

    def test_results_stay_sorted_unique(self):
        res = combined_set_op(
            None, [np.array([1, 5, 9, 12])], [np.array([1, 9, 12])], [False]
        )[0]
        assert np.array_equal(res, np.unique(res))


def _segmented(slot_arrays):
    """Flatten per-slot arrays into the (values, segments) batch form."""
    vals = (np.concatenate(slot_arrays) if any(a.size for a in slot_arrays)
            else np.empty(0, dtype=np.int64))
    segs = np.repeat(np.arange(len(slot_arrays), dtype=np.int64),
                     [a.size for a in slot_arrays])
    return vals, segs


class TestMembershipBatch:
    def test_broadcast_operand(self):
        vals = np.array([1, 3, 5, 7])
        assert list(membership_batch(vals, None, np.array([3, 7, 9]))) == [
            False, True, False, True]

    def test_empty_cases(self):
        assert membership_batch(np.array([1]), None, np.array([])).tolist() == [False]
        assert membership_batch(np.array([]), None, np.array([1])).size == 0

    def test_segmented_membership_is_per_segment(self):
        vals, segs = _segmented([np.array([1, 2]), np.array([1, 2])])
        opv, opo = np.array([1, 2]), np.array([0, 1, 2])  # seg0={1}, seg1={2}
        got = membership_batch(vals, segs, opv, opo, stride=10)
        assert got.tolist() == [True, False, False, True]

    def test_segmented_requires_stride(self):
        with pytest.raises(ValueError):
            membership_batch(np.array([1]), None, np.array([1]), np.array([0, 1]))

    def test_segmented_empty_segment_never_matches(self):
        vals, segs = _segmented([np.array([5]), np.array([5])])
        opv, opo = np.array([5]), np.array([0, 1, 1])  # seg1 empty
        got = membership_batch(vals, segs, opv, opo, stride=10)
        assert got.tolist() == [True, False]


class TestCombinedSetOpBatch:
    @given(sets_strategy, st.booleans())
    @settings(max_examples=80)
    def test_matches_per_slot_path(self, spec, difference):
        inputs = [sorted_unique(a) for a, _, _ in spec]
        operands = [sorted_unique(b) for _, b, _ in spec]
        m = len(spec)
        w_slot = Warp(warp_id=0, block_id=0)
        expected = combined_set_op(w_slot, inputs, operands, [difference] * m)
        vals, segs = _segmented(inputs)
        opv, opo_raw = _segmented(operands)
        opo = np.concatenate([[0], np.cumsum([b.size for b in operands])])
        w_batch = Warp(warp_id=1, block_id=0)
        got_v, got_s = combined_set_op_batch(
            w_batch, vals, segs, opv, opo, difference=difference, stride=61
        )
        exp_v, exp_s = _segmented(expected)
        assert got_v.tolist() == exp_v.tolist()
        assert got_s.tolist() == exp_s.tolist()
        # identical warp charges: the fast path's cycle contract
        assert w_batch.clock == w_slot.clock
        assert w_batch.counters.rounds == w_slot.counters.rounds
        assert w_batch.counters.busy_lanes == w_slot.counters.busy_lanes

    def test_broadcast_equals_replicated_operand(self):
        inputs = [np.array([1, 2, 3]), np.array([2, 4])]
        operand = np.array([2, 3])
        vals, segs = _segmented(inputs)
        w_b = Warp(warp_id=0, block_id=0)
        got_v, got_s = combined_set_op_batch(w_b, vals, segs, operand)
        w_s = Warp(warp_id=1, block_id=0)
        expected = combined_set_op(w_s, inputs, [operand] * 2, [False] * 2)
        exp_v, exp_s = _segmented(expected)
        assert got_v.tolist() == exp_v.tolist()
        assert got_s.tolist() == exp_s.tolist()
        assert w_b.clock == w_s.clock

    def test_injected_found_mask_controls_result_not_charge(self):
        """A precomputed mask (the bitmap index) must not change charges."""
        vals = np.array([1, 2, 3])
        segs = np.zeros(3, dtype=np.int64)
        operand = np.array([2])
        found = np.array([False, True, False])
        w_a = Warp(warp_id=0, block_id=0)
        got_v, _ = combined_set_op_batch(w_a, vals, segs, operand, found=found)
        w_b = Warp(warp_id=1, block_id=0)
        ref_v, _ = combined_set_op_batch(w_b, vals, segs, operand)
        assert got_v.tolist() == ref_v.tolist() == [2]
        assert w_a.clock == w_b.clock

    def test_costless_without_warp(self):
        got_v, got_s = combined_set_op_batch(
            None, np.array([1, 2]), np.zeros(2, dtype=np.int64), np.array([2])
        )
        assert got_v.tolist() == [2]
