"""Metric-conservation properties of the observability layer.

A metric that merely *looks* plausible is worse than no metric: the
report would be trusted and wrong.  These tests pin the accounting
identities the collector promises (see ``docs/OBSERVABILITY.md``):

* **Steal conservation** — every global push attempt is either
  delivered or lost (``attempts == completed + lost``), including
  losses injected by a :class:`~repro.faults.FaultInjector`, and the
  collector's totals agree with the engine's own steal counters.
* **Cycle conservation** — per warp, ``busy + idle == clock``, and
  every warp's clock equals the device makespan after the final sync.
* **Unroll accounting** — no batch exceeds ``config.unroll``, and the
  batched element total equals the engine's expanded tree-node count.

The fault-plan sweep reuses the chaos harness' graph and fixed seeds
(``tests/test_chaos_identity.py``) so the identities are checked under
randomized failure schedules, not just on sunny-day runs.
"""

from __future__ import annotations

import pytest

from repro import EngineConfig, STMatchEngine
from repro.core.counters import RunStatus
from repro.core.distributed import run_distributed
from repro.core.multi_gpu import run_multi_gpu
from repro.faults import FaultInjector, FaultPlan
from repro.graph import powerlaw_cluster
from repro.obs import validate_report
from repro.pattern import get_query
from repro.virtgpu.device import VirtualDevice


@pytest.fixture(scope="module")
def graph():
    # same generator/seed as the chaos-identity suite
    return powerlaw_cluster(150, m=4, p_triangle=0.6, seed=13)


@pytest.fixture(scope="module")
def observed(graph):
    """One observed q5 run on an explicit device: (result, device, cfg)."""
    cfg = EngineConfig(observe=True)
    dev = VirtualDevice(cfg.device, device_id=0)
    res = STMatchEngine(graph, cfg).run(get_query("q5"), device=dev)
    assert res.status == RunStatus.OK
    assert res.report is not None
    validate_report(res.report)
    return res, dev, cfg


def _assert_steal_conservation(report, result=None):
    s = report["steals"]
    assert s["global_push_attempts"] == s["global_push"] + s["global_push_lost"]
    assert s["local"] <= s["local_attempts"]
    assert s["global_take"] <= s["global_push"]
    if result is not None:
        assert s["local"] == result.num_local_steals
        assert s["global_push"] == result.num_global_steals
        assert s["global_push_lost"] == result.num_lost_steals


class TestStealConservation:
    def test_attempts_equal_completed_plus_lost(self, observed):
        res, _dev, _cfg = observed
        _assert_steal_conservation(res.report, res)
        # the fixture workload must actually exercise stealing, or the
        # identities above are vacuous
        assert res.report["steals"]["local_attempts"] > 0
        assert res.num_local_steals > 0

    def test_warp_rows_sum_to_totals(self, observed):
        res, _dev, _cfg = observed
        s = res.report["steals"]
        warps = res.report["warps"]
        assert sum(w["steals"]["local"] for w in warps) == s["local"]
        assert sum(w["steals"]["global_push"] for w in warps) == s["global_push"]
        assert sum(w["steals"]["global_take"] for w in warps) == s["global_take"]
        assert sum(w["local_attempts"] for w in warps) == s["local_attempts"]
        assert sum(w["idle_polls"] for w in warps) == s["idle_polls"]

    def test_injected_losses_are_accounted(self, graph):
        cfg = EngineConfig(observe=True)
        dev = VirtualDevice(cfg.device, device_id=0)
        dev.attach_injector(FaultInjector(0, steal_losses=2))
        res = STMatchEngine(graph, cfg).run(get_query("q5"), device=dev)
        assert res.status == RunStatus.OK
        s = res.report["steals"]
        # dropped messages are losses, never silent disappearances
        assert res.num_lost_steals > 0
        assert s["global_push_lost"] == res.num_lost_steals
        _assert_steal_conservation(res.report, res)


class TestCycleConservation:
    def test_busy_plus_idle_equals_clock(self, observed):
        res, dev, _cfg = observed
        makespan = dev.makespan_cycles()
        assert res.report["cycles"] == makespan
        for row in res.report["warps"]:
            assert row["busy_cycles"] + row["idle_cycles"] == pytest.approx(
                row["clock"]
            ), row
            # the kernel's final sync parks every warp at the makespan
            assert row["clock"] == pytest.approx(makespan), row

    def test_device_warps_agree_with_report(self, observed):
        res, dev, _cfg = observed
        rows = {(r["block"], r["warp"]): r for r in res.report["warps"]}
        assert len(rows) == len(dev.warps)
        for w in dev.warps:
            row = rows[(w.block_id, w.warp_id)]
            assert row["clock"] == w.clock
            assert row["busy_cycles"] == w.counters.busy_cycles
            assert row["idle_cycles"] == w.counters.idle_cycles
            assert row["tree_nodes"] == w.counters.tree_nodes
            assert row["matches"] == w.counters.matches


class TestUnrollAccounting:
    def test_batch_fill_bounded_by_unroll(self, observed):
        res, _dev, cfg = observed
        unroll = res.report["unroll"]
        assert unroll["unroll"] == cfg.unroll
        assert 0 < unroll["max_fill"] <= cfg.unroll
        assert 0.0 < unroll["avg_fill"] <= float(cfg.unroll)
        for row in res.report["warps"]:
            assert row["max_batch"] <= cfg.unroll, row
        for row in res.report["levels"]:
            assert row["max_batch"] <= cfg.unroll, row

    def test_batched_elems_equal_tree_nodes(self, observed):
        res, _dev, _cfg = observed
        assert res.report["unroll"]["batch_elems"] == res.counters.tree_nodes
        assert (
            sum(r["batch_elems"] for r in res.report["warps"])
            == res.counters.tree_nodes
        )

    def test_level_rows_sum_to_warp_totals(self, observed):
        res, _dev, _cfg = observed
        warps = res.report["warps"]
        levels = res.report["levels"]
        assert sum(r["batches"] for r in levels) == sum(r["batches"] for r in warps)
        assert sum(r["batch_elems"] for r in levels) == sum(
            r["batch_elems"] for r in warps
        )


class TestUnderFaultPlans:
    """Conservation holds under the chaos suite's fault schedules."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_multigpu_report_conserves(self, graph, seed):
        plan = FaultPlan.random(seed, num_devices=3, num_machines=1)
        res = run_multi_gpu(
            graph, get_query("q5"), num_devices=3,
            config=EngineConfig(checkpoint_interval=2, observe=True),
            fault_plan=plan,
        )
        assert res.report is not None
        validate_report(res.report)
        assert res.report["kind"] == "multi_gpu"
        assert res.report["status"] == res.status
        assert res.report["matches"] == res.matches
        _assert_steal_conservation(res.report)
        for child in res.report["children"]:
            _assert_steal_conservation(child)

    def test_distributed_report_conserves(self, graph):
        res = run_distributed(
            graph, get_query("q5"), num_machines=2, gpus_per_machine=2,
            config=EngineConfig(observe=True),
        )
        assert res.report is not None
        validate_report(res.report)
        assert res.report["kind"] == "distributed"
        assert res.report["matches"] == res.matches
        _assert_steal_conservation(res.report)
        assert res.report["children"]
