"""Result-cache correctness (repro.serve.cache).

The headline property: across randomized interleavings of concurrent
match requests and graph replacements (fixed seed), the service can
**provably never serve a stale count** — every countable response's
``matches`` equals the golden count for the ``graph_version`` the
response names.  Version-keyed cache entries make staleness structural
rather than probabilistic, and the property test hammers exactly the
window where it could break (requests racing ``update_graph``).
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import STMatchEngine
from repro.pattern import QUERIES
from repro.serve import MatchRequest, MatchService, ResponseStatus, ResultCache
from repro.serve.cache import RESULT_CACHE_MAX

from tests import oracle

QNAMES = ("q1", "q2")


@pytest.fixture(scope="module")
def graphs():
    return oracle.corpus_graphs()


class TestResultCacheUnit:
    def test_key_includes_version_and_semantics(self):
        cfg = EngineConfig()
        k1 = ResultCache.key("g", 1, QUERIES["q1"], False, cfg)
        k2 = ResultCache.key("g", 2, QUERIES["q1"], False, cfg)
        k3 = ResultCache.key("g", 1, QUERIES["q1"], True, cfg)
        assert len({k1, k2, k3}) == 3

    def test_key_ignores_identity_preserving_config(self):
        base = EngineConfig()
        variants = [
            base.with_(executor="process", num_workers=4),
            base.with_(codegen=True),
            base.with_(fastpath=False),
        ]
        k = ResultCache.key("g", 1, QUERIES["q1"], False, base)
        for v in variants:
            assert ResultCache.key("g", 1, QUERIES["q1"], False, v) == k

    def test_key_differs_on_count_affecting_config(self):
        base = EngineConfig()
        k = ResultCache.key("g", 1, QUERIES["q1"], False, base)
        kb = ResultCache.key("g", 1, QUERIES["q1"], False,
                             base.with_(max_results=10))
        assert k != kb

    def test_invalidate_graph_drops_only_that_graph(self):
        cache = ResultCache()
        cfg = EngineConfig()
        cache.put(ResultCache.key("a", 1, QUERIES["q1"], False, cfg), 10)
        cache.put(ResultCache.key("a", 2, QUERIES["q2"], False, cfg), 20)
        cache.put(ResultCache.key("b", 1, QUERIES["q1"], False, cfg), 30)
        assert cache.invalidate_graph("a") == 2
        assert len(cache) == 1
        assert cache.get(
            ResultCache.key("b", 1, QUERIES["q1"], False, cfg)) == 30

    def test_default_capacity(self):
        assert ResultCache().stats()["capacity"] == RESULT_CACHE_MAX


class TestStalenessProperty:
    """Randomized interleavings of requests and graph updates."""

    def test_never_serves_a_stale_count(self, graphs):
        seed = 1234
        rng = random.Random(seed)
        # versions cycle sparse -> dense -> sparse -> ...: golden counts
        # per (version, query) are known up front
        version_graph = {v: ("sparse" if v % 2 else "dense")
                         for v in range(1, 8)}
        golden = {}
        for v, gname in version_graph.items():
            eng = STMatchEngine(graphs[gname], EngineConfig())
            for qn in QNAMES:
                golden[(v, qn)] = eng.run(QUERIES[qn]).matches

        svc = MatchService({"g": graphs[version_graph[1]]}, EngineConfig(),
                           queue_depth=16)
        responses = []
        resp_lock = threading.Lock()

        def client(cseed: int) -> None:
            crng = random.Random(f"{seed}:{cseed}")
            for _ in range(15):
                qn = crng.choice(QNAMES)
                kwargs = {}
                if crng.random() < 0.3:
                    kwargs["idempotency_key"] = f"c{cseed}-{qn}-{crng.randrange(3)}"
                r = svc.match(MatchRequest(graph="g", query=QUERIES[qn],
                                           **kwargs))
                with resp_lock:
                    responses.append((qn, r))

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        # interleave 5 graph replacements at randomized (seeded) points
        # while the clients are mid-flight
        for v in range(2, 7):
            threading.Event().wait(rng.uniform(0.005, 0.02))
            svc.update_graph("g", graphs[version_graph[v]])
        for t in threads:
            t.join()

        assert len(responses) == 60
        stale = [
            (qn, r.graph_version, r.matches, golden[(r.graph_version, qn)])
            for qn, r in responses
            if r.countable and r.matches != golden[(r.graph_version, qn)]
        ]
        assert not stale, f"stale counts served: {stale[:5]}"
        # every response was terminal and explicit
        for _, r in responses:
            assert r.status in ResponseStatus.ALL
            if r.status != ResponseStatus.OK:
                assert r.detail

    def test_replays_survive_updates_with_their_own_version(self, graphs):
        # a replayed response after an update still names the version it
        # was computed on — it is honest, not stale
        svc = MatchService({"g": graphs["sparse"]}, EngineConfig())
        a = svc.match(MatchRequest(graph="g", query=QUERIES["q1"],
                                   idempotency_key="k"))
        svc.update_graph("g", graphs["dense"])
        b = svc.match(MatchRequest(graph="g", query=QUERIES["q1"],
                                   idempotency_key="k"))
        assert b.served_from == "idempotency"
        assert b.graph_version == 1 == a.graph_version
        assert b.matches == a.matches
        # a fresh key sees the new version
        c = svc.match(MatchRequest(graph="g", query=QUERIES["q1"]))
        assert c.graph_version == 2
