"""Golden-count oracle: engine counts == brute-force NetworkX counts.

Every other correctness test in the suite is *differential* (fastpath
vs reference, observed vs unobserved, faulted vs fault-free) — a
systematically wrong engine could pass them all.  This file pins the
engine to ground truth: the checked-in fixture
``tests/fixtures/golden_counts.json`` holds exact counts for
q1–q13 × {unlabeled, labeled} on two seeded corpus graphs, computed by
an independent VF2 enumerator (``tests/oracle.py``).

Three layers of defense:

1. engine == fixture, all 52 cells (fast — runs in tier-1);
2. live oracle == fixture on a small spot-check subset, so a stale or
   hand-edited fixture is caught without paying full VF2 enumeration;
3. corpus-graph shapes match the fixture metadata, so a corpus change
   without ``--regen`` fails loudly instead of comparing apples to
   last year's oranges.
"""

from __future__ import annotations

import pytest

from repro import EngineConfig, STMatchEngine
from repro.core.counters import RunStatus
from repro.pattern import QUERIES

from tests import oracle

GRAPH_NAMES = ("sparse", "dense")
MODES = ("unlabeled", "labeled")


@pytest.fixture(scope="module")
def fixture():
    return oracle.load_fixture()


@pytest.fixture(scope="module")
def graphs():
    return oracle.corpus_graphs()


class TestFixtureIntegrity:
    def test_fixture_covers_full_matrix(self, fixture):
        assert fixture["schema_version"] == 2
        for gname in GRAPH_NAMES:
            for mode in MODES:
                cells = fixture["counts"][gname][mode]
                assert sorted(cells) == sorted(oracle.ORACLE_QUERIES)

    def test_fixture_covers_mutated_cells(self, fixture):
        # the batch-dynamic suite pins against these; schema v2 ships
        # one cell per mutation seed with the full query matrix
        for gname in GRAPH_NAMES:
            cells = fixture["mutated"][gname]
            assert [c["seed"] for c in cells] == oracle.MUTATION_SEEDS
            for cell in cells:
                assert cell["inserts"] and cell["deletes"]
                for mode in MODES:
                    assert sorted(cell["counts"][mode]) == sorted(
                        oracle.ORACLE_QUERIES)

    def test_corpus_graphs_match_fixture_meta(self, fixture, graphs):
        # a changed generator/seed without --regen must fail here, not
        # produce confusing count mismatches downstream
        for gname, g in graphs.items():
            meta = fixture["graphs"][gname]
            assert meta["num_vertices"] == g.num_vertices
            assert meta["num_edges"] == g.num_edges

    def test_labeled_protocol_pinned(self, fixture):
        proto = fixture["labeled_protocol"]
        assert proto["num_labels"] == oracle.NUM_LABELS
        assert proto["seed"] == oracle.LABEL_SEED


class TestEngineMatchesOracle:
    """The headline test: 52 engine runs against checked-in ground truth."""

    @pytest.mark.parametrize("gname", GRAPH_NAMES)
    @pytest.mark.parametrize("qname", oracle.ORACLE_QUERIES)
    @pytest.mark.parametrize("mode", MODES)
    def test_engine_equals_golden_count(self, fixture, graphs, gname, qname, mode):
        g = graphs[gname]
        q = QUERIES[qname]
        if mode == "labeled":
            g, q = oracle.labeled_pair(g, q)
        res = STMatchEngine(g, EngineConfig()).run(q)
        assert res.status == RunStatus.OK, repr(res)
        assert res.matches == fixture["counts"][gname][mode][qname], (
            f"engine disagrees with golden count on {gname}/{qname}/{mode}"
        )

    @pytest.mark.parametrize("qname", ["q1", "q5", "q8", "q13"])
    def test_naive_config_also_matches(self, fixture, graphs, qname):
        # counts must be config-independent: the no-optimization rung of
        # the ladder sees the same golden numbers
        res = STMatchEngine(graphs["dense"], EngineConfig.naive()).run(QUERIES[qname])
        assert res.status == RunStatus.OK
        assert res.matches == fixture["counts"]["dense"]["unlabeled"][qname]


class TestLiveOracleSpotCheck:
    """Recompute a cheap subset with the live VF2 counter.

    Guards against a stale/hand-edited fixture without the full
    enumeration cost (the complete regen is ``python tests/oracle.py
    --regen`` and takes a minute or two).
    """

    CELLS = [
        ("sparse", "q2", "unlabeled"),
        ("sparse", "q7", "labeled"),
        ("dense", "q8", "unlabeled"),
        ("dense", "q13", "labeled"),
    ]

    @pytest.mark.parametrize("gname,qname,mode", CELLS)
    def test_live_oracle_equals_fixture(self, fixture, graphs, gname, qname, mode):
        g = graphs[gname]
        q = QUERIES[qname]
        if mode == "labeled":
            g, q = oracle.labeled_pair(g, q)
        assert oracle.count_oracle(g, q) == fixture["counts"][gname][mode][qname]
