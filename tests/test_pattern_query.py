"""Unit tests for QueryGraph and the q1–q24 motif registry."""

import numpy as np
import pytest

from repro.pattern import QUERIES, QueryGraph, connected_motifs, get_query, query_names


class TestQueryGraph:
    def test_from_edges(self):
        q = QueryGraph.from_edges(3, [(0, 1), (1, 2)])
        assert q.size == 3
        assert q.num_edges == 2
        assert list(q.neighbors(1)) == [0, 2]

    def test_clique_factory(self):
        q = QueryGraph.clique(4)
        assert q.is_clique
        assert q.num_edges == 6

    def test_cycle_path_star(self):
        assert QueryGraph.cycle(5).num_edges == 5
        assert QueryGraph.path(5).num_edges == 4
        assert QueryGraph.star(5).degree(0) == 4

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            QueryGraph.from_edges(4, [(0, 1), (2, 3)])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            QueryGraph.from_edges(2, [(0, 0)])

    def test_asymmetric_adj_rejected(self):
        adj = np.zeros((3, 3), dtype=bool)
        adj[0, 1] = True
        with pytest.raises(ValueError):
            QueryGraph(adj=adj)

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            QueryGraph.clique(9)

    def test_relabeled_preserves_structure(self):
        q = QueryGraph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        r = q.relabeled([2, 3, 0, 1])
        assert r.num_edges == q.num_edges
        assert q.is_isomorphic_to(r)

    def test_relabeled_moves_labels(self):
        q = QueryGraph.from_edges(3, [(0, 1), (1, 2)], labels=[7, 8, 9])
        r = q.relabeled([2, 1, 0])
        assert list(r.labels) == [9, 8, 7]

    def test_relabeled_bad_order(self):
        q = QueryGraph.path(3)
        with pytest.raises(ValueError):
            q.relabeled([0, 0, 1])

    def test_hash_eq(self):
        a = QueryGraph.path(4)
        b = QueryGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert a == b and hash(a) == hash(b)
        assert a != QueryGraph.cycle(4)

    def test_labels_affect_equality(self):
        a = QueryGraph.path(3).with_labels([0, 1, 0])
        b = QueryGraph.path(3).with_labels([0, 1, 1])
        assert a != b


class TestAutomorphisms:
    @pytest.mark.parametrize("factory,expected", [
        (lambda: QueryGraph.clique(4), 24),
        (lambda: QueryGraph.cycle(5), 10),
        (lambda: QueryGraph.path(4), 2),
        (lambda: QueryGraph.star(5), 24),
        (lambda: QueryGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)]), 6),
    ])
    def test_known_group_sizes(self, factory, expected):
        assert len(factory().automorphisms()) == expected

    def test_labels_break_symmetry(self):
        tri = QueryGraph.clique(3)
        assert len(tri.automorphisms()) == 6
        labeled = tri.with_labels([0, 0, 1])
        assert len(labeled.automorphisms()) == 2

    def test_identity_always_present(self):
        q = get_query("q5")
        assert tuple(range(q.size)) in q.automorphisms()

    def test_isomorphism_check(self):
        a = QueryGraph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        b = QueryGraph.from_edges(4, [(0, 2), (2, 1), (1, 3), (3, 0)])
        assert a.is_isomorphic_to(b)
        assert not a.is_isomorphic_to(QueryGraph.path(4))


class TestMotifRegistry:
    def test_24_queries(self):
        assert len(QUERIES) == 24
        assert query_names() == [f"q{i}" for i in range(1, 25)]

    def test_size_groups(self):
        # q1-q8 size 5, q9-q16 size 6, q17-q24 size 7 (Sec. VIII-A)
        assert all(QUERIES[f"q{i}"].size == 5 for i in range(1, 9))
        assert all(QUERIES[f"q{i}"].size == 6 for i in range(9, 17))
        assert all(QUERIES[f"q{i}"].size == 7 for i in range(17, 25))

    def test_cliques_are_q8_q16_q24(self):
        for name, k in [("q8", 5), ("q16", 6), ("q24", 7)]:
            q = QUERIES[name]
            assert q.is_clique and q.size == k

    def test_all_queries_connected_and_distinct(self):
        names = query_names()
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                qa, qb = QUERIES[a], QUERIES[b]
                if qa.size == qb.size:
                    assert not qa.is_isomorphic_to(qb), (a, b)

    def test_get_query_with_labels(self):
        q = get_query("q1", labels=[0, 1, 0, 1, 0])
        assert q.is_labeled

    def test_get_query_unknown(self):
        with pytest.raises(KeyError):
            get_query("q99")

    def test_query_names_by_size(self):
        assert query_names(size=6) == [f"q{i}" for i in range(9, 17)]


class TestConnectedMotifs:
    @pytest.mark.parametrize("size,count", [(1, 1), (2, 1), (3, 2), (4, 6), (5, 21)])
    def test_known_counts(self, size, count):
        # OEIS A001349: connected graphs on n nodes
        assert len(connected_motifs(size)) == count

    def test_size_bound(self):
        with pytest.raises(ValueError):
            connected_motifs(6)
