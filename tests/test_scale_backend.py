"""Out-of-core graph backend: store, memmap twin, chunked ingest.

The scale tier's first contract is that *where the CSR arrays live is
invisible to matching*: a memory-mapped graph must produce byte-
identical matches AND simulated cycles to the in-memory original over
the full golden matrix.  The second is that the chunked ingest path —
which never materializes the whole edge list — builds arrays byte-
identical to :meth:`CSRGraph.from_edges`.  Both identities are pinned
here, along with the on-disk store round-trip, backend resolution
precedence, the adjacency-bitmap guards (and their B409 lint), and the
streaming SNAP loader.
"""

from __future__ import annotations

import io as _io
import os

import numpy as np
import pytest

from repro.analysis.budget import lint_budget
from repro.core.config import EngineConfig
from repro.core.engine import STMatchEngine
from repro.graph.csr import ADJACENCY_BITMAP_MAX_VERTICES, CSRGraph
from repro.graph.io import iter_edge_chunks, load_snap_edgelist
from repro.pattern import QUERIES, build_plan, get_query
from repro.scale import (
    GRAPH_BACKENDS,
    PartitionedGraph,
    graph_backend_of,
    ingest_edge_chunks,
    ingest_edgelist_file,
    load_csr_store,
    resolve_graph_backend,
    save_csr_store,
    with_backend,
)
from repro.scale.backend import is_memmap_backed
from repro.scale.store import is_csr_store
from tests import oracle


@pytest.fixture(scope="module")
def graphs():
    return oracle.corpus_graphs()


@pytest.fixture(scope="module")
def fixture():
    return oracle.load_fixture()


@pytest.fixture(autouse=True)
def _no_env_backend(monkeypatch):
    monkeypatch.delenv("REPRO_GRAPH_BACKEND", raising=False)


def random_multigraph_edges(rng, n, m, self_loops=True):
    """Messy input: duplicates, both orientations, self-loops."""
    edges = rng.integers(0, n, size=(m, 2))
    if not self_loops:
        edges = edges[edges[:, 0] != edges[:, 1]]
    return edges


class TestStore:
    def test_round_trip_mmap_and_heap(self, tmp_path, graphs):
        g = graphs["sparse"]
        d = save_csr_store(g, tmp_path / "s")
        assert is_csr_store(d)
        for mmap in (True, False):
            back = load_csr_store(d, mmap=mmap)
            assert np.array_equal(back.indptr, g.indptr)
            assert np.array_equal(back.indices, g.indices)
            assert back.num_vertices == g.num_vertices
            assert back.directed == g.directed
            assert is_memmap_backed(back) is mmap

    def test_labels_survive(self, tmp_path, graphs):
        lg = oracle.labeled_pair(graphs["dense"], get_query("q1"))[0]
        back = load_csr_store(save_csr_store(lg, tmp_path / "l"))
        assert back.is_labeled
        assert np.array_equal(back.labels, lg.labels)

    def test_not_a_store(self, tmp_path):
        assert not is_csr_store(tmp_path)
        with pytest.raises((FileNotFoundError, ValueError)):
            load_csr_store(tmp_path)


class TestBackendResolution:
    def test_default_is_memory(self):
        assert resolve_graph_backend() == "memory"
        assert resolve_graph_backend(EngineConfig()) == "memory"

    def test_config_selects(self):
        cfg = EngineConfig(graph_backend="memmap")
        assert resolve_graph_backend(cfg) == "memmap"

    def test_env_wins_over_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH_BACKEND", "memory")
        assert resolve_graph_backend(EngineConfig(graph_backend="memmap")) \
            == "memory"
        monkeypatch.setenv("REPRO_GRAPH_BACKEND", "memmap")
        assert resolve_graph_backend(EngineConfig()) == "memmap"

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH_BACKEND", "gpu-direct-storage")
        with pytest.raises(ValueError, match="REPRO_GRAPH_BACKEND"):
            resolve_graph_backend()

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError, match="graph_backend"):
            EngineConfig(graph_backend="nvme")

    def test_with_backend_memoizes_twin(self, graphs):
        g = graphs["sparse"]
        twin = with_backend(g, "memmap")
        assert twin is not g and is_memmap_backed(twin)
        assert with_backend(g, "memmap") is twin  # cached
        assert with_backend(twin, "memmap") is twin  # idempotent
        assert with_backend(g, "memory") is g
        assert graph_backend_of(twin) == "memmap"
        assert graph_backend_of(g) == "memory"

    def test_subclasses_pass_through(self, graphs):
        shard = PartitionedGraph.replicate(graphs["sparse"], 0, 10)
        assert with_backend(shard, "memmap") is shard

    def test_backends_registry(self):
        assert GRAPH_BACKENDS == ("memory", "memmap")


class TestMemmapMatchIdentity:
    """matches AND simulated cycles byte-identical across backends."""

    @pytest.mark.parametrize("gname", ["sparse", "dense"])
    @pytest.mark.parametrize("qname", oracle.ORACLE_QUERIES)
    def test_golden_matrix_unlabeled(self, graphs, fixture, gname, qname):
        g = graphs[gname]
        plan = build_plan(get_query(qname))
        ref = STMatchEngine(g, EngineConfig()).run(plan)
        mm = STMatchEngine(
            g, EngineConfig(graph_backend="memmap")).run(plan)
        assert mm.matches == ref.matches \
            == fixture["counts"][gname]["unlabeled"][qname]
        assert mm.cycles == ref.cycles

    @pytest.mark.parametrize("gname", ["sparse", "dense"])
    @pytest.mark.parametrize("qname", oracle.ORACLE_QUERIES)
    def test_golden_matrix_labeled(self, graphs, fixture, gname, qname):
        lg, lq = oracle.labeled_pair(graphs[gname], QUERIES[qname])
        plan = build_plan(lq)
        ref = STMatchEngine(lg, EngineConfig()).run(plan)
        mm = STMatchEngine(
            lg, EngineConfig(graph_backend="memmap")).run(plan)
        assert mm.matches == ref.matches \
            == fixture["counts"][gname]["labeled"][qname]
        assert mm.cycles == ref.cycles

    def test_env_backend_reaches_engine(self, graphs, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH_BACKEND", "memmap")
        eng = STMatchEngine(graphs["sparse"], EngineConfig())
        assert is_memmap_backed(eng.graph)
        ref = STMatchEngine(graphs["sparse"]).run(get_query("q4"))
        monkeypatch.setenv("REPRO_GRAPH_BACKEND", "memmap")
        assert eng.run(get_query("q4")).matches == ref.matches


class TestChunkedIngest:
    @pytest.mark.parametrize("directed", [False, True])
    @pytest.mark.parametrize("chunk_edges,block_arcs",
                             [(257, 97), (1 << 20, 1 << 22)])
    def test_byte_identity_vs_from_edges(self, tmp_path, directed,
                                         chunk_edges, block_arcs):
        rng = np.random.default_rng(3)
        n, m = 120, 900
        edges = random_multigraph_edges(rng, n, m)
        ref = CSRGraph.from_edges(n, edges, directed=directed)
        got = ingest_edge_chunks(
            edges, n, tmp_path / f"d{directed}-{chunk_edges}",
            directed=directed, chunk_edges=chunk_edges,
            block_arcs=block_arcs)
        assert np.array_equal(got.indptr, ref.indptr)
        assert np.array_equal(got.indices, ref.indices)
        assert got.indptr.dtype == ref.indptr.dtype
        assert got.indices.dtype == ref.indices.dtype
        assert is_memmap_backed(got)

    def test_callable_source_consumed_twice(self, tmp_path):
        rng = np.random.default_rng(9)
        edges = random_multigraph_edges(rng, 40, 200)
        pulls = []

        def source():
            pulls.append(1)
            for lo in range(0, len(edges), 64):
                yield edges[lo:lo + 64]

        got = ingest_edge_chunks(source, 40, tmp_path / "c")
        ref = CSRGraph.from_edges(40, edges)
        assert np.array_equal(got.indices, ref.indices)
        assert len(pulls) >= 2  # counting pass + scatter pass

    def test_labels_and_empty(self, tmp_path):
        labels = np.array([2, 0, 1], dtype=np.int32)
        got = ingest_edge_chunks(
            np.empty((0, 2), dtype=np.int64), 3, tmp_path / "e",
            labels=labels)
        assert got.indices.size == 0 and got.num_vertices == 3
        assert np.array_equal(got.labels, labels)

    def test_out_of_range_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="out of range"):
            ingest_edge_chunks(np.array([[0, 5]]), 3, tmp_path / "bad")

    def test_matches_on_ingested_graph(self, tmp_path, graphs, fixture):
        g = graphs["dense"]
        edges = np.asarray(sorted(g.edges()), dtype=np.int64)
        got = ingest_edge_chunks(edges, g.num_vertices, tmp_path / "m",
                                 chunk_edges=17)
        res = STMatchEngine(got).run(get_query("q4"))
        assert res.matches == fixture["counts"]["dense"]["unlabeled"]["q4"]


class TestStreamingLoader:
    EDGELIST = "# comment\n0 1\n1 2\n2 0\n3 0\n\n# more\n2 3\n"

    def test_iter_edge_chunks(self):
        chunks = list(iter_edge_chunks(_io.StringIO(self.EDGELIST),
                                       chunk_edges=2))
        assert all(c.shape[1] == 2 for c in chunks)
        assert sum(len(c) for c in chunks) == 5
        assert len(chunks) >= 2  # actually chunked

    def test_load_snap_chunked_identity(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text(self.EDGELIST)
        eager = CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 0), (3, 0),
                                        (2, 3)])
        got = load_snap_edgelist(path, chunk_edges=2)
        assert np.array_equal(got.indptr, eager.indptr)
        assert np.array_equal(got.indices, eager.indices)

    def test_ingest_edgelist_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text(self.EDGELIST)
        got = ingest_edgelist_file(path, tmp_path / "store", chunk_edges=2)
        eager = CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 0), (3, 0),
                                        (2, 3)])
        assert got.num_vertices == 4  # n inferred from max vertex id
        assert np.array_equal(got.indices, eager.indices)
        assert is_memmap_backed(got)


class TestBitmapGuards:
    def test_memmap_graph_refuses_bitmap(self, graphs):
        mm = with_backend(graphs["dense"], "memmap")
        with pytest.raises(ValueError, match="B409"):
            mm.adjacency_bitmap(2)

    def test_huge_graph_refuses_bitmap(self):
        n = ADJACENCY_BITMAP_MAX_VERTICES + 1
        g = CSRGraph.from_edges(n, [(0, 1), (1, 2)])
        with pytest.raises(ValueError, match="B409"):
            g.adjacency_bitmap(2)

    def test_small_heap_graph_still_allows(self, graphs):
        g = graphs["dense"]
        rows = g.adjacency_bitmap(2)
        assert rows and all(r.size == g.num_vertices for r in rows.values())

    def test_b409_lint_fires(self, graphs):
        mm = with_backend(graphs["dense"], "memmap")
        plan = build_plan(get_query("q1"))
        cfg = EngineConfig(bitmap_threshold=2)
        rules = [d.rule for d in lint_budget(plan, cfg, mm)]
        assert "B409" in rules

    def test_b406_gated_off_for_memmap(self, graphs):
        mm = with_backend(graphs["dense"], "memmap")
        plan = build_plan(get_query("q1"))
        rules = [d.rule for d in lint_budget(plan, EngineConfig(), mm)]
        assert "B406" not in rules
        # but the heap original may still earn the suggestion
        heap_rules = [d.rule for d in
                      lint_budget(plan, EngineConfig(), graphs["dense"])]
        assert "B409" not in heap_rules

    def test_b409_absent_when_bitmap_viable(self, graphs):
        plan = build_plan(get_query("q1"))
        cfg = EngineConfig(bitmap_threshold=2)
        rules = [d.rule for d in lint_budget(plan, cfg, graphs["dense"])]
        assert "B409" not in rules


class TestDeviceGraphBytes:
    def test_full_graph_charges_all_arrays(self, graphs):
        g = graphs["sparse"]
        want = g.indices.nbytes + g.indptr.nbytes
        if g.is_labeled:
            want += g.labels.nbytes
        assert g.device_graph_bytes() == want

    def test_memmap_twin_same_charge(self, graphs):
        g = graphs["sparse"]
        assert with_backend(g, "memmap").device_graph_bytes() \
            == g.device_graph_bytes()
