"""Zero-overhead differential test: observability never changes a run.

The ``repro.obs`` contract (see ``docs/OBSERVABILITY.md``) is that
tracing hooks are read-only and charge-free: a run with metrics on is
**byte-identical** to the same run with metrics off — same matches,
same simulated cycles, same steal schedule, same per-warp clocks and
counters.  This file pins that contract for q1–q13 in the style of
``tests/test_fastpath_property.py``: run every query twice on explicit
devices, once dark and once observed, and compare everything the cost
model can see.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import EngineConfig, STMatchEngine
from repro.graph import CSRGraph
from repro.graph.labels import assign_random_labels, relabel_query_consistently
from repro.obs import TraceCollector, validate_report
from repro.pattern import QUERIES
from repro.virtgpu.device import VirtualDevice

QUERY_NAMES = [f"q{i}" for i in range(1, 14)]


def _random_graph(n: int, density: float, seed: int) -> CSRGraph:
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < density
    edges = [(i, j) for i in range(n) for j in range(i + 1, n) if mask[i, j]]
    return CSRGraph.from_edges(n, edges)


def _labeled_pair(g, q, num_labels=3, seed=7):
    lg = assign_random_labels(g, num_labels=num_labels, seed=seed)
    abstract = np.arange(q.size, dtype=np.int32) % num_labels
    return lg, q.with_labels(relabel_query_consistently(abstract, lg, seed=seed))


def _run_observed_pair(graph, query, cfg):
    """Run ``query`` dark and observed on fresh explicit devices."""
    dev_off = VirtualDevice(cfg.device, device_id=0)
    off = STMatchEngine(graph, cfg).run(query, device=dev_off)
    cfg_on = cfg.with_(observe=True)
    dev_on = VirtualDevice(cfg_on.device, device_id=0)
    on = STMatchEngine(graph, cfg_on).run(query, device=dev_on)
    return off, on, dev_off, dev_on


def _assert_byte_identical(off, on, dev_off, dev_on):
    assert on.matches == off.matches
    assert on.cycles == off.cycles            # exact float equality, not approx
    assert on.sim_ms == off.sim_ms
    assert on.status == off.status
    assert on.num_local_steals == off.num_local_steals
    assert on.num_global_steals == off.num_global_steals
    assert on.num_lost_steals == off.num_lost_steals
    assert on.counters == off.counters
    assert on.occupancy == off.occupancy
    assert on.thread_utilization == off.thread_utilization
    # the steal *schedule* is pinned transitively by per-warp clocks and
    # counters: any reordered or extra steal shifts some warp's timeline
    assert len(dev_on.warps) == len(dev_off.warps)
    for w_on, w_off in zip(dev_on.warps, dev_off.warps):
        assert w_on.clock == w_off.clock, (w_on, w_off)
        assert w_on.counters == w_off.counters, (w_on, w_off)


class TestZeroOverhead:
    @pytest.mark.parametrize("qname", QUERY_NAMES)
    def test_observe_is_byte_identical(self, qname):
        g = _random_graph(26, 0.3, seed=11)
        off, on, dev_off, dev_on = _run_observed_pair(g, QUERIES[qname], EngineConfig())
        _assert_byte_identical(off, on, dev_off, dev_on)
        assert off.report is None
        assert on.report is not None
        validate_report(on.report)

    @pytest.mark.parametrize("qname", ["q4", "q8"])
    def test_observe_is_byte_identical_labeled(self, qname):
        g, q = _labeled_pair(_random_graph(26, 0.3, seed=11), QUERIES[qname])
        off, on, dev_off, dev_on = _run_observed_pair(g, q, EngineConfig())
        _assert_byte_identical(off, on, dev_off, dev_on)

    @pytest.mark.parametrize("qname", ["q5", "q11"])
    def test_observe_is_byte_identical_naive_config(self, qname):
        # the no-steal/no-unroll rung exercises different hook sites
        g = _random_graph(26, 0.3, seed=11)
        off, on, dev_off, dev_on = _run_observed_pair(
            g, QUERIES[qname], EngineConfig.naive()
        )
        _assert_byte_identical(off, on, dev_off, dev_on)

    def test_observe_under_budget(self):
        g = _random_graph(26, 0.3, seed=11)
        cfg = EngineConfig(max_results=50)
        off, on, dev_off, dev_on = _run_observed_pair(g, QUERIES["q1"], cfg)
        assert off.status == "budget"
        _assert_byte_identical(off, on, dev_off, dev_on)


class TestCollectorAttachment:
    def test_explicit_collector_without_observe_flag(self):
        g = _random_graph(26, 0.3, seed=11)
        col = TraceCollector()
        res = STMatchEngine(g, EngineConfig()).run(QUERIES["q3"], collector=col)
        assert res.report is not None
        validate_report(res.report)
        assert res.report["matches"] == res.matches

    def test_report_mirrors_result(self):
        g = _random_graph(26, 0.3, seed=11)
        cfg = EngineConfig(observe=True)
        res = STMatchEngine(g, cfg).run(QUERIES["q5"])
        rep = res.report
        assert rep["status"] == res.status
        assert rep["matches"] == res.matches
        assert rep["cycles"] == res.cycles
        assert rep["engine_steals"] == {
            "local": res.num_local_steals,
            "global": res.num_global_steals,
            "lost": res.num_lost_steals,
        }

    def test_tracer_detached_after_run(self):
        # a reused device must never feed a stale collector
        cfg = EngineConfig(observe=True)
        g = _random_graph(26, 0.3, seed=11)
        dev = VirtualDevice(cfg.device, device_id=0)
        STMatchEngine(g, cfg).run(QUERIES["q1"], device=dev)
        assert all(w.tracer is None for w in dev.warps)
