"""The ``python -m repro.analysis`` lint CLI."""

from __future__ import annotations

import io
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.cli import lint_plan, main, resolve_patterns
from repro.core.config import EngineConfig
from repro.pattern.motifs import QUERIES
from repro.pattern.plan import build_plan

SRC = str(Path(__file__).resolve().parents[1] / "src")


def run_main(*argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


# -- pattern resolution -------------------------------------------------------


def test_resolve_default_is_full_builtin_set():
    qs = resolve_patterns([])
    names = [q.name for q in qs]
    assert names[0] == "q1" and "q24" in names
    assert "clique3" in names and "clique4" in names


def test_resolve_specific_and_parametric():
    qs = resolve_patterns(["q7", "clique5", "motifs:3"])
    assert qs[0].name == "q7"
    assert qs[1].size == 5 and qs[1].is_clique
    assert all(q.size == 3 for q in qs[2:])
    assert len(qs) >= 4  # triangle + path at least


def test_resolve_unknown_pattern_raises():
    with pytest.raises(ValueError, match="unknown pattern"):
        resolve_patterns(["q99x"])


# -- lint command -------------------------------------------------------------


def test_lint_all_builtins_clean():
    code, out = run_main("lint")
    assert code == 0, out
    assert "clean" in out
    assert "error" not in out


def test_lint_verbose_shows_notes():
    code, out = run_main("lint", "q5", "-v")
    assert code == 0
    assert "B405" in out  # the peak-pressure note


def test_lint_detects_shared_overflow():
    code, out = run_main("lint", "q5", "--unroll", "64", "--shared-mem", "4096")
    assert code == 1
    assert "B401" in out and "FAILED" in out
    assert "fix:" in out


def test_lint_naive_program_accepted():
    code, out = run_main("lint", "q5", "--no-code-motion")
    assert code == 0, out


def test_lint_vertex_induced():
    code, out = run_main("lint", "q1", "--vertex-induced")
    assert code == 0, out


def test_lint_split_labels_flags_fig10a_layout():
    code, out = run_main("lint", "q13", "--labels", "2", "--split-labels")
    assert code == 0  # warnings do not fail the lint
    assert "L303" in out and "Fig. 10b" in out


def test_lint_unknown_pattern_exits_2():
    assert main(["lint", "q99x"], out=io.StringIO()) == 2


def test_lint_split_labels_requires_labels():
    assert main(["lint", "q5", "--split-labels"], out=io.StringIO()) == 2


def test_lint_invalid_config_exits_2_without_traceback(capsys):
    assert main(["lint", "q5", "--unroll", "0"], out=io.StringIO()) == 2
    assert "unroll must be >= 1" in capsys.readouterr().err


def test_rules_subcommand_prints_catalog():
    code, out = run_main("rules")
    assert code == 0
    for rule in ("P105", "S202", "L303", "B401", "X501"):
        assert rule in out


# -- lint_plan API ------------------------------------------------------------


def test_lint_plan_combines_verifier_and_budget():
    plan = build_plan(QUERIES["q5"])
    rep = lint_plan(plan, EngineConfig())
    assert not rep.has_errors
    assert rep.by_rule("B405")  # budget layer ran
    assert rep.subject.startswith("plan[")


# -- module entry point -------------------------------------------------------


def test_module_invocation():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "lint", "q5", "clique3"],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "clean" in proc.stdout
