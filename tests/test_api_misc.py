"""API-surface tests: results, cells, CLI plumbing, package exports."""

import pytest

from repro import (
    EngineConfig,
    RunResult,
    RunStatus,
    STMatchEngine,
    __version__,
    get_query,
)
from repro.graph import erdos_renyi
from repro.virtgpu.warp import WarpCounters


class TestRunResult:
    def test_cell_formats(self):
        assert RunResult(system="x", sim_ms=1.234).cell(2) == "1.23"
        assert RunResult(system="x", status=RunStatus.OOM).cell() == "×"
        assert RunResult(system="x", status=RunStatus.BUDGET).cell() == "−"
        assert RunResult(system="x", status=RunStatus.UNSUPPORTED).cell() == "n/a"

    def test_speedup_over(self):
        a = RunResult(system="a", sim_ms=1.0)
        b = RunResult(system="b", sim_ms=4.0)
        assert a.speedup_over(b) == pytest.approx(4.0)
        assert b.speedup_over(a) == pytest.approx(0.25)

    def test_speedup_none_on_failure(self):
        a = RunResult(system="a", sim_ms=1.0)
        bad = RunResult(system="b", status=RunStatus.OOM)
        assert a.speedup_over(bad) is None
        assert bad.speedup_over(a) is None

    def test_ok_property(self):
        assert RunResult(system="x").ok
        assert not RunResult(system="x", status=RunStatus.OOM).ok


class TestWarpCounters:
    def test_merge(self):
        a = WarpCounters(set_ops=1, rounds=2, busy_lanes=10, matches=5)
        b = WarpCounters(set_ops=2, rounds=3, busy_lanes=20, matches=7)
        a.merge(b)
        assert a.set_ops == 3 and a.rounds == 5
        assert a.busy_lanes == 30 and a.matches == 12

    def test_utilization_zero_when_idle(self):
        assert WarpCounters().thread_utilization == 0.0

    def test_lane_slots(self):
        assert WarpCounters(rounds=3).lane_slots == 96


class TestEngineConfig:
    def test_variant_factories(self):
        assert EngineConfig.naive().unroll == 1
        assert not EngineConfig.naive().local_steal
        assert EngineConfig.localsteal().local_steal
        assert not EngineConfig.localsteal().global_steal
        assert EngineConfig.local_global_steal().global_steal
        assert EngineConfig.full().unroll == 8

    def test_with_updates(self):
        cfg = EngineConfig().with_(unroll=4, max_results=10)
        assert cfg.unroll == 4 and cfg.max_results == 10
        assert EngineConfig().unroll == 8  # original untouched

    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(unroll=0)
        with pytest.raises(ValueError):
            EngineConfig(chunk_size=0)
        with pytest.raises(ValueError):
            EngineConfig(stop_level=-1)
        with pytest.raises(ValueError):
            EngineConfig(max_degree=0)

    def test_paper_defaults(self):
        cfg = EngineConfig()
        assert cfg.unroll == 8
        assert cfg.stop_level == 2
        assert cfg.max_degree == 4096


class TestEngineApi:
    def test_count_helper(self):
        g = erdos_renyi(25, 0.3, seed=2)
        eng = STMatchEngine(g)
        assert eng.count(get_query("q2")) == eng.run(get_query("q2")).matches

    def test_version(self):
        assert __version__ == "1.0.0"

    def test_top_level_exports(self):
        import repro

        for name in ["STMatchEngine", "EngineConfig", "CSRGraph", "QueryGraph",
                     "load_dataset", "get_query", "build_plan", "run_multi_gpu"]:
            assert hasattr(repro, name), name


class TestCli:
    def test_parser_choices(self):
        from repro.bench.__main__ import build_parser

        p = build_parser()
        args = p.parse_args(["table1"])
        assert args.experiment == "table1"
        args = p.parse_args(["table2a", "--queries", "q5", "q8", "--budget", "1000"])
        assert args.queries == ["q5", "q8"]
        assert args.budget == 1000

    def test_cli_table1_runs(self, capsys):
        from repro.bench.__main__ import main

        assert main(["table1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_cli_small_grid_runs(self, capsys):
        from repro.bench.__main__ import main

        rc = main(["table2b", "--datasets", "wiki_vote", "--queries", "q8",
                   "--budget", "5000", "--scale", "tiny"])
        assert rc == 0
        assert "Table II(b)" in capsys.readouterr().out
