"""Service-level batch edits: versioned invalidation + cache patching.

Covers the PR's serve-layer contract: ``ResultCache.invalidate_graph``
takes a version (entries of *other* versions survive),
``MatchService.apply_edits`` bumps the version and carries patched
exact counts forward instead of dropping the cache wholesale, and
pinned engine runs (the anchoring primitive underneath it all) are
backend-identical and partition the total count.
"""

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import STMatchEngine
from repro.graph.csr import CSRGraph
from repro.graph.generators import powerlaw_cluster
from repro.pattern import QUERIES
from repro.serve import MatchRequest, MatchService, ResultCache


def _graph(seed: int = 1, n: int = 24) -> CSRGraph:
    return powerlaw_cluster(n, 3, 0.5, seed=seed)


class TestVersionedInvalidation:
    def _seeded_cache(self) -> ResultCache:
        cache = ResultCache()
        cfg = EngineConfig()
        for version in (1, 2, 3):
            key = ResultCache.key("g", version, QUERIES["q1"], False, cfg)
            cache.put(key, 100 + version)
        return cache

    def test_targeted_version_leaves_others_alone(self):
        # the satellite's headline: version-N entries survive when only
        # version N+1 is invalidated
        cache = self._seeded_cache()
        cfg = EngineConfig()
        dropped = cache.invalidate_graph("g", version=2)
        assert dropped == 1
        k1 = ResultCache.key("g", 1, QUERIES["q1"], False, cfg)
        k2 = ResultCache.key("g", 2, QUERIES["q1"], False, cfg)
        k3 = ResultCache.key("g", 3, QUERIES["q1"], False, cfg)
        assert cache.get(k1) == 101
        assert cache.get(k2) is None
        assert cache.get(k3) == 103

    def test_no_version_still_drops_everything(self):
        cache = self._seeded_cache()
        assert cache.invalidate_graph("g") == 3
        assert len(cache) == 0

    def test_entries_snapshot_is_per_version(self):
        cache = self._seeded_cache()
        entries = cache.entries("g", 2)
        assert len(entries) == 1
        (key, count), = entries
        assert key[1] == 2 and count == 102
        # snapshotting is not an access: no hit/miss accounting drift
        assert cache.stats()["hits"] == 0


class TestApplyEdits:
    def test_patches_cached_counts_forward(self):
        g = _graph()
        svc = MatchService({"g": g})
        q1, q4 = QUERIES["q1"], QUERIES["q4"]
        svc.match(MatchRequest(graph="g", query=q1))
        svc.match(MatchRequest(graph="g", query=q4))
        deletes = [sorted(next(iter(g.edges())))]
        report = svc.apply_edits("g", inserts=[(0, 9), (2, 17)],
                                 deletes=deletes)
        assert report.new_version == report.old_version + 1
        assert report.entries_patched == 2
        assert report.anchor_runs > 0
        for q in (q1, q4):
            resp = svc.match(MatchRequest(graph="g", query=q))
            assert resp.served_from == "cache"
            assert resp.graph_version == report.new_version
            fresh = svc._hosts["g"].snapshot()[0]
            assert resp.matches == STMatchEngine(fresh).count(q)

    def test_noop_batch_keeps_version_and_cache(self):
        g = _graph()
        svc = MatchService({"g": g})
        q1 = QUERIES["q1"]
        svc.match(MatchRequest(graph="g", query=q1))
        existing = sorted(next(iter(g.edges())))
        report = svc.apply_edits("g", inserts=[existing])
        assert report.new_version == report.old_version
        assert report.entries_patched == 0 and report.entries_invalidated == 0
        assert svc.match(MatchRequest(graph="g", query=q1)
                         ).served_from == "cache"

    def test_vertex_induced_entries_are_dropped_not_patched(self):
        g = _graph()
        svc = MatchService({"g": g})
        q1 = QUERIES["q1"]
        svc.match(MatchRequest(graph="g", query=q1, vertex_induced=True))
        report = svc.apply_edits("g", deletes=[sorted(next(iter(g.edges())))])
        assert report.entries_patched == 0
        assert report.entries_invalidated == 1
        # recomputed on demand, correct against a fresh engine
        resp = svc.match(MatchRequest(graph="g", query=q1,
                                      vertex_induced=True))
        assert resp.served_from == "engine"
        fresh = svc._hosts["g"].snapshot()[0]
        assert resp.matches == STMatchEngine(fresh).count(
            q1, vertex_induced=True)

    def test_sequential_batches_accumulate_exactly(self):
        g = _graph(seed=5)
        svc = MatchService({"g": g})
        q3 = QUERIES["q3"]
        svc.match(MatchRequest(graph="g", query=q3))
        rng = np.random.default_rng(13)
        for step in range(3):
            current = svc._hosts["g"].snapshot()[0]
            existing = sorted(tuple(sorted(e)) for e in current.edges())
            dels = [existing[int(rng.integers(0, len(existing)))]]
            ins = []
            while len(ins) < 1:
                u, v = sorted(int(x) for x in rng.integers(0, 24, 2))
                if u != v and not current.has_edge(u, v):
                    ins.append((u, v))
            report = svc.apply_edits("g", inserts=ins, deletes=dels)
            resp = svc.match(MatchRequest(graph="g", query=q3))
            fresh = svc._hosts["g"].snapshot()[0]
            assert resp.matches == STMatchEngine(fresh).count(q3), (
                f"step {step}: {report}")
            assert resp.served_from == "cache"

    def test_update_graph_only_drops_old_version(self):
        g = _graph()
        svc = MatchService({"g": g})
        q1 = QUERIES["q1"]
        svc.match(MatchRequest(graph="g", query=q1))
        # seed an entry under a *future* version by hand: update_graph
        # must not touch it (only the superseded version is purged)
        future_key = ResultCache.key("g", 2, q1, False, svc.config)
        svc._cache.put(future_key, 4242)
        svc.update_graph("g", _graph(seed=9))
        assert svc._cache.get(future_key) == 4242
        resp = svc.match(MatchRequest(graph="g", query=q1))
        assert resp.served_from == "cache" and resp.matches == 4242


class TestPinnedRuns:
    """The anchoring primitive: pinned levels restrict, backends agree,
    and pinned root counts partition the total."""

    def test_pins_partition_the_count(self):
        g = _graph(seed=2, n=18)
        q = QUERIES["q1"]
        eng = STMatchEngine(g)
        plan = eng.plan(q)
        total = eng.run(plan).matches
        parts = [eng.run(plan, pins={0: v}).matches
                 for v in range(g.num_vertices)]
        assert sum(parts) == total

    @pytest.mark.parametrize("fastpath", [False, True],
                             ids=["reference", "fastpath"])
    def test_backends_agree_under_pins(self, fastpath):
        g = _graph(seed=2, n=18)
        q = QUERIES["q4"]
        ref = STMatchEngine(g, EngineConfig(fastpath=False))
        alt = STMatchEngine(g, EngineConfig(fastpath=fastpath))
        for pins in ({0: 3}, {1: 5}, {0: 3, 1: 5}, {2: 0}):
            assert ref.run(q, pins=pins).matches == \
                alt.run(q, pins=pins).matches

    def test_pins_bypass_codegen_tier(self):
        g = _graph(seed=2, n=18)
        q = QUERIES["q1"]
        eng = STMatchEngine(g, EngineConfig(codegen=True))
        # a pinned run must not hit the compiled (pin-free) kernels
        pinned = sum(eng.run(q, pins={0: v}).matches
                     for v in range(g.num_vertices))
        assert pinned == STMatchEngine(g).count(q)
