"""Property-based round-trip tests for storage substrates (hypothesis)."""

import io

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import PartialTrie
from repro.graph import CSRGraph, load_labeled_graph, load_snap_edgelist
from repro.graph.io import dumps_edgelist

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def edge_list(draw, max_n=25):
    n = draw(st.integers(2, max_n))
    m = draw(st.integers(0, n * 3))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    edges = [
        (int(a), int(b))
        for a, b in zip(rng.integers(0, n, m), rng.integers(0, n, m))
        if a != b
    ]
    return n, edges


class TestCsrProperties:
    @given(edge_list())
    @SETTINGS
    def test_symmetry(self, ne):
        n, edges = ne
        g = CSRGraph.from_edges(n, edges)
        for u, v in edges:
            assert g.has_edge(u, v) and g.has_edge(v, u)

    @given(edge_list())
    @SETTINGS
    def test_neighbor_lists_sorted_unique(self, ne):
        n, edges = ne
        g = CSRGraph.from_edges(n, edges)
        for v in range(n):
            row = g.neighbors(v)
            assert np.array_equal(row, np.unique(row))

    @given(edge_list())
    @SETTINGS
    def test_degree_sum_is_twice_edges(self, ne):
        n, edges = ne
        g = CSRGraph.from_edges(n, edges)
        assert int(g.degree().sum()) == 2 * g.num_edges

    @given(edge_list())
    @SETTINGS
    def test_snap_text_roundtrip(self, ne):
        n, edges = ne
        g = CSRGraph.from_edges(n, edges)
        text = dumps_edgelist(g)
        g2 = load_snap_edgelist(io.StringIO(text), compact_ids=False)
        # isolated trailing vertices are not representable in edge lists;
        # compare edge sets
        assert sorted(g2.edges()) == sorted(g.edges())

    @given(edge_list())
    @SETTINGS
    def test_directed_reverse_involution(self, ne):
        n, edges = ne
        g = CSRGraph.from_edges(n, edges, directed=True)
        rr = g.reversed_view().reversed_view()
        assert np.array_equal(rr.indptr, g.indptr)
        assert np.array_equal(rr.indices, g.indices)

    @given(edge_list())
    @SETTINGS
    def test_reverse_preserves_arcs(self, ne):
        n, edges = ne
        g = CSRGraph.from_edges(n, edges, directed=True)
        rev = g.reversed_view()
        for u in range(n):
            for v in g.neighbors(u):
                assert rev.has_edge(int(v), u)


class TestLabeledFormatRoundtrip:
    @given(edge_list(max_n=15), st.integers(1, 4))
    @SETTINGS
    def test_v_e_roundtrip(self, ne, num_labels):
        n, edges = ne
        rng = np.random.default_rng(7)
        labels = rng.integers(0, num_labels, n)
        g = CSRGraph.from_edges(n, edges, labels=labels)
        lines = [f"v {v} {int(labels[v])}" for v in range(n)]
        lines += [f"e {u} {v}" for u, v in g.edges()]
        g2 = load_labeled_graph(io.StringIO("\n".join(lines)))
        assert sorted(g2.edges()) == sorted(g.edges())
        assert np.array_equal(g2.labels[: n], labels)


class TestTrieProperties:
    @st.composite
    @staticmethod
    def tables(draw):
        rows = draw(st.integers(1, 30))
        cols = draw(st.integers(1, 5))
        rng = np.random.default_rng(draw(st.integers(0, 2**31)))
        t = rng.integers(0, 20, size=(rows, cols)).astype(np.int32)
        # group rows lexicographically: BFS produces prefix-grouped rows
        order = np.lexsort(t.T[::-1])
        return t[order]

    @given(tables())
    @SETTINGS
    def test_roundtrip_multiset(self, table):
        trie = PartialTrie.from_table(table)
        back = trie.to_table()
        assert sorted(map(tuple, back.tolist())) == sorted(map(tuple, np.unique(table, axis=0).tolist()))

    @given(tables())
    @SETTINGS
    def test_compression_never_expands_grouped_input(self, table):
        trie = PartialTrie.from_table(table)
        # nodes never exceed total cells for lexicographically grouped rows
        assert trie.num_nodes <= table.shape[0] * table.shape[1]
