"""Unit + integration tests for the baseline systems."""

import numpy as np
import pytest

from repro import EngineConfig, STMatchEngine, get_query
from repro.baselines import (
    CuTSEngine,
    DryadicEngine,
    GSIEngine,
    PartialTrie,
    count_matches_recursive,
    schedule_tasks,
)
from repro.core.counters import RunStatus
from repro.graph import assign_random_labels, erdos_renyi, powerlaw_cluster
from repro.graph.labels import relabel_query_consistently
from repro.virtgpu.costmodel import CpuCostModel
from repro.virtgpu.device import DeviceConfig


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster(90, m=3, p_triangle=0.5, seed=21)


@pytest.fixture(scope="module")
def labeled_graph():
    return assign_random_labels(powerlaw_cluster(90, m=3, p_triangle=0.5, seed=21),
                                num_labels=4, seed=5)


class TestDryadic:
    @pytest.mark.parametrize("name", ["q1", "q5", "q7", "q8"])
    @pytest.mark.parametrize("vi", [False, True])
    def test_counts_match_oracle(self, graph, name, vi):
        eng = DryadicEngine(graph)
        plan = eng.plan(get_query(name), vertex_induced=vi)
        assert eng.run(plan).matches == count_matches_recursive(graph, plan)

    def test_labeled_counts(self, labeled_graph):
        q = get_query("q5").with_labels(
            relabel_query_consistently(np.array([0, 1, 0, 1, 2]), labeled_graph, seed=1)
        )
        eng = DryadicEngine(labeled_graph)
        plan = eng.plan(q)
        assert eng.run(plan).matches == count_matches_recursive(labeled_graph, plan)

    def test_no_motion_same_count_slower(self, graph):
        q = get_query("q16")
        with_m = DryadicEngine(graph, code_motion=True).run(q)
        without_m = DryadicEngine(graph, code_motion=False).run(q)
        assert with_m.matches == without_m.matches
        assert without_m.sim_ms >= with_m.sim_ms

    def test_more_threads_faster(self, graph):
        q = get_query("q7")
        t2 = DryadicEngine(graph, cpu=CpuCostModel(num_threads=2)).run(q)
        t64 = DryadicEngine(graph, cpu=CpuCostModel(num_threads=64)).run(q)
        assert t64.sim_ms < t2.sim_ms

    def test_scaled_cpu_default(self, graph):
        # default is scaled to the 64-warp virtual device => 2 threads
        assert DryadicEngine(graph).cpu.num_threads == 2
        assert DryadicEngine(graph, scale_to_warps=None).cpu.num_threads == 64

    def test_budget(self, graph):
        res = DryadicEngine(graph, max_results=5).run(get_query("q1"))
        assert res.status == RunStatus.BUDGET
        assert res.matches >= 5


class TestScheduleTasks:
    def test_single_thread_sums(self):
        assert schedule_tasks([1.0, 2.0, 3.0], 1) == 6.0

    def test_many_threads_max(self):
        assert schedule_tasks([5.0, 1.0, 1.0], 3) == 5.0

    def test_work_queue_order(self):
        # queue order (not LPT): big task last stalls one thread
        makespan = schedule_tasks([1, 1, 1, 10], 2)
        assert makespan == 11 or makespan == 12

    def test_overhead_charged(self):
        assert schedule_tasks([1.0], 1, task_overhead=0.5) == 1.5

    def test_no_threads_rejected(self):
        with pytest.raises(ValueError):
            schedule_tasks([1.0], 0)


class TestCuTS:
    @pytest.mark.parametrize("name", ["q1", "q5", "q7", "q8"])
    def test_counts_match_oracle(self, graph, name):
        eng = CuTSEngine(graph)
        plan = eng.plan(get_query(name))
        assert eng.run(plan).matches == count_matches_recursive(graph, plan)

    def test_rejects_labeled(self, labeled_graph):
        q = get_query("q5").with_labels([0, 1, 0, 1, 2])
        res = CuTSEngine(labeled_graph).run(q)
        assert res.status == RunStatus.UNSUPPORTED

    def test_rejects_vertex_induced(self, graph):
        res = CuTSEngine(graph).run(get_query("q5"), vertex_induced=True)
        assert res.status == RunStatus.UNSUPPORTED

    def test_oom_on_tiny_device(self, graph):
        dev = DeviceConfig(global_mem_bytes=16_000)  # barely fits the graph
        res = CuTSEngine(graph, device=dev).run(get_query("q7"))
        assert res.status == RunStatus.OOM

    def test_chunking_on_small_budget_still_correct(self, graph):
        # enough memory to finish, little enough to force hybrid splits
        ref = CuTSEngine(graph).run(get_query("q7"))
        dev = DeviceConfig(global_mem_bytes=1_000_000)
        res = CuTSEngine(graph, device=dev).run(get_query("q7"))
        if res.ok:
            assert res.matches == ref.matches
            assert "chunks=" in res.detail
        else:
            assert res.status == RunStatus.OOM

    def test_per_level_launches(self, graph):
        res = CuTSEngine(graph).run(get_query("q8"))
        # BFS: at least one launch per level
        assert int(res.detail.split("launches=")[1].split()[0]) >= 5

    def test_row_budget_truncates(self, graph):
        res = CuTSEngine(graph, max_rows=100).run(get_query("q1"))
        assert res.status in (RunStatus.BUDGET, RunStatus.OK)
        if res.status == RunStatus.BUDGET:
            assert res.matches >= 0


class TestGSI:
    def test_labeled_counts_match_oracle(self, labeled_graph):
        q = get_query("q5").with_labels(
            relabel_query_consistently(np.array([0, 1, 0, 1, 2]), labeled_graph, seed=1)
        )
        eng = GSIEngine(labeled_graph)
        plan = eng.plan(q)
        assert eng.run(plan).matches == count_matches_recursive(labeled_graph, plan)

    def test_unlabeled_supported(self, graph):
        eng = GSIEngine(graph)
        plan = eng.plan(get_query("q5"))
        assert eng.run(plan).matches == count_matches_recursive(graph, plan)

    def test_no_chunking_ooms_earlier_than_cuts(self, graph):
        """GSI (full tuples, no hybrid fallback) must fail on memory
        where cuTS still manages via chunking."""
        dev = DeviceConfig(global_mem_bytes=1_000_000)
        r_gsi = GSIEngine(graph, device=dev).run(get_query("q7"))
        r_cuts = CuTSEngine(graph, device=dev).run(get_query("q7"))
        if r_cuts.ok:
            assert r_gsi.status == RunStatus.OOM

    def test_slower_than_cuts(self, graph):
        q = get_query("q7")
        r_gsi = GSIEngine(graph).run(q)
        r_cuts = CuTSEngine(graph).run(q)
        if r_gsi.ok and r_cuts.ok:
            assert r_gsi.sim_ms >= r_cuts.sim_ms


class TestSystemAgreement:
    """All four systems must count identically on shared workloads."""

    @pytest.mark.parametrize("name", ["q2", "q5", "q7"])
    def test_unlabeled_edge_induced(self, graph, name):
        q = get_query(name)
        st = STMatchEngine(graph).run(q)
        dr = DryadicEngine(graph).run(q)
        cu = CuTSEngine(graph).run(q)
        gs = GSIEngine(graph).run(q)
        counts = {st.matches, dr.matches}
        if cu.ok:
            counts.add(cu.matches)
        if gs.ok:
            counts.add(gs.matches)
        assert len(counts) == 1

    def test_stmatch_beats_dryadic_beats_cuts(self):
        """The paper's headline ordering on a skewed mid-size input."""
        g = powerlaw_cluster(300, m=5, p_triangle=0.6, seed=2)
        q = get_query("q7")
        st = STMatchEngine(g).run(q)
        dr = DryadicEngine(g).run(q)
        cu = CuTSEngine(g).run(q)
        assert st.sim_ms < dr.sim_ms
        if cu.ok:
            assert dr.sim_ms < cu.sim_ms


class TestPartialTrie:
    def test_roundtrip(self):
        table = np.array([[0, 1, 2], [0, 1, 3], [0, 4, 5], [6, 7, 8]], dtype=np.int32)
        trie = PartialTrie.from_table(table)
        back = trie.to_table()
        assert np.array_equal(np.sort(back, axis=0), np.sort(table, axis=0))

    def test_sharing_compresses(self):
        # many rows sharing one prefix: trie ≪ full tuples
        rows = [[0, 1, v] for v in range(100)]
        trie = PartialTrie.from_table(np.array(rows, dtype=np.int32))
        assert trie.num_partials == 100
        assert trie.num_nodes == 1 + 1 + 100
        assert trie.compression_ratio() > 1.0

    def test_no_sharing_no_compression(self):
        rows = np.arange(30, dtype=np.int32).reshape(10, 3)
        trie = PartialTrie.from_table(rows)
        assert trie.num_nodes == 30

    def test_empty(self):
        trie = PartialTrie.from_table(np.empty((0, 3), dtype=np.int32))
        assert trie.num_partials == 0
        assert trie.nbytes == 0

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            PartialTrie.from_table(np.zeros(3))
