"""Unit + property tests for the SIMT warp primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.virtgpu import (
    ballot_sync,
    compact_offsets,
    lane_binary_search,
    lanemask_lt,
    popc,
    warp_exclusive_scan,
)


class TestBallotPopc:
    def test_ballot_basic(self):
        assert ballot_sync(np.array([True, False, True])) == 0b101

    def test_ballot_respects_mask(self):
        assert ballot_sync(np.array([True, True, True]), mask=0b010) == 0b010

    def test_ballot_empty(self):
        assert ballot_sync(np.array([], dtype=bool)) == 0

    def test_ballot_33_lanes_rejected(self):
        with pytest.raises(ValueError):
            ballot_sync(np.ones(33, dtype=bool))

    def test_popc(self):
        assert popc(0) == 0
        assert popc(0xFFFFFFFF) == 32
        assert popc(0b1011) == 3

    def test_popc_negative_wraps(self):
        assert popc(-1) == 32

    @given(st.lists(st.booleans(), max_size=32))
    def test_popc_ballot_is_sum(self, bits):
        pred = np.array(bits, dtype=bool)
        assert popc(ballot_sync(pred)) == int(pred.sum())

    def test_lanemask_lt(self):
        assert lanemask_lt(0) == 0
        assert lanemask_lt(5) == 0b11111

    def test_lanemask_bounds(self):
        with pytest.raises(ValueError):
            lanemask_lt(32)


class TestScan:
    def test_exclusive_scan(self):
        out = warp_exclusive_scan(np.array([3, 1, 4, 1]))
        assert list(out) == [0, 3, 4, 8]

    def test_scan_empty_and_single(self):
        assert warp_exclusive_scan(np.array([], dtype=int)).size == 0
        assert list(warp_exclusive_scan(np.array([7]))) == [0]

    @given(st.lists(st.integers(0, 100), max_size=32))
    def test_scan_matches_cumsum(self, vals):
        v = np.array(vals, dtype=np.int64)
        out = warp_exclusive_scan(v)
        expected = np.concatenate([[0], np.cumsum(v)[:-1]]) if v.size else v
        assert np.array_equal(out, expected)

    def test_scan_33_rejected(self):
        with pytest.raises(ValueError):
            warp_exclusive_scan(np.zeros(33))


class TestLaneBinarySearch:
    def test_found_and_missing(self):
        s = np.array([2, 4, 6, 8])
        res = lane_binary_search(np.array([2, 3, 8, 9]), s)
        assert list(res) == [True, False, True, False]

    def test_empty_set(self):
        res = lane_binary_search(np.array([1, 2]), np.array([], dtype=int))
        assert not res.any()

    @given(
        st.lists(st.integers(0, 50), max_size=32),
        st.lists(st.integers(0, 50), max_size=40, unique=True),
    )
    def test_matches_isin(self, values, sset):
        v = np.array(values, dtype=np.int64)
        s = np.array(sorted(sset), dtype=np.int64)
        assert np.array_equal(lane_binary_search(v, s), np.isin(v, s))


class TestCompactOffsets:
    def test_basic(self):
        keep = np.array([True, False, True, True])
        sidx = np.array([0, 0, 0, 1])
        offs = compact_offsets(keep, sidx)
        assert list(offs) == [0, -1, 1, 0]

    def test_interleaved_sets(self):
        keep = np.array([True, True, True, True])
        sidx = np.array([0, 1, 0, 1])
        offs = compact_offsets(keep, sidx)
        assert list(offs) == [0, 0, 1, 1]

    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            compact_offsets(np.array([True]), np.array([0, 1]))

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 3)), max_size=32))
    @settings(max_examples=60)
    def test_offsets_dense_per_set(self, rows):
        keep = np.array([r[0] for r in rows], dtype=bool)
        sidx = np.array([r[1] for r in rows], dtype=np.int64)
        offs = compact_offsets(keep, sidx)
        # for each set, kept offsets are exactly 0..count-1 in stream order
        for s in np.unique(sidx):
            got = offs[(sidx == s) & keep]
            assert list(got) == list(range(len(got)))
        assert (offs[~keep] == -1).all()
