"""Work-stealing sanitizer: clean runs stay silent, corrupted steals raise.

The engine-level mutation tests monkeypatch the kernel's
``divide_and_copy`` with wrappers that corrupt the split *after* the
legal division — duplicating a stolen segment, dropping candidates, or
pushing ``iter`` past ``Csize`` — and assert the sanitizer converts the
corruption into a :class:`SanitizerError` naming the warp and level,
instead of the silent wrong count the engine would otherwise produce.
"""

from __future__ import annotations

import types

import numpy as np
import pytest

from repro.analysis.diagnostics import PlanVerificationError
from repro.analysis.sanitizer import SanitizerError, StealSanitizer
from repro.core.config import EngineConfig
from repro.core.engine import STMatchEngine
from repro.core.stack import Frame, StolenWork, WarpStack, divide_and_copy
from repro.graph.generators import powerlaw_cluster
from repro.pattern.motifs import QUERIES
from repro.pattern.plan import build_plan
from repro.pattern.query import QueryGraph

Q7 = QUERIES["q7"]


@pytest.fixture(scope="module")
def skewed_graph():
    # degree-skewed graph: reliably triggers both steal levels
    return powerlaw_cluster(150, m=4, p_triangle=0.6, seed=3)


def make_sanitizer(stop_level: int = 2) -> StealSanitizer:
    plan = build_plan(QueryGraph.clique(4, name="c4"))
    cfg = EngineConfig(stop_level=stop_level)
    return StealSanitizer(plan, cfg)


def arr(*vals) -> np.ndarray:
    return np.asarray(vals, dtype=np.int64)


def root_frame(*cands) -> Frame:
    return Frame(level=0, slot_vertices=np.empty(0, dtype=np.int64),
                 cand=[arr(*cands)])


def inner_frame(level: int, vertex: int, *cands) -> Frame:
    return Frame(level=level, slot_vertices=arr(vertex), cand=[arr(*cands)])


# -- frame / stack invariants (X504) ------------------------------------------


def test_check_frame_accepts_legal_frame():
    san = make_sanitizer()
    san.check_frame(None, root_frame(1, 2, 3), "test")
    assert san.checks == 1


@pytest.mark.parametrize(
    "corrupt, fragment",
    [
        (lambda f: setattr(f, "iter", 4), "iter"),          # past Csize=3
        (lambda f: setattr(f, "uiter", 1), "uiter"),        # only 1 slot
        (lambda f: setattr(f, "level", 9), "level"),        # plan has 4
        (lambda f: f.cand.clear(), "slots"),                # no slots at all
    ],
)
def test_check_frame_rejects_corruption(corrupt, fragment):
    san = make_sanitizer()
    f = root_frame(1, 2, 3)
    corrupt(f)
    with pytest.raises(SanitizerError) as ei:
        san.check_frame(None, f, "test")
    assert ei.value.rule == "X504"
    assert fragment in str(ei.value)


def test_check_stack_rejects_wrong_depth():
    san = make_sanitizer()
    stack = WarpStack()
    stack.push(root_frame(1, 2))
    stack.frames.append(inner_frame(2, 1, 5))  # depth 1 claims level 2
    with pytest.raises(SanitizerError) as ei:
        san.check_stack(None, stack, "test")
    assert ei.value.rule == "X504"


# -- root conservation (X505) -------------------------------------------------


def test_root_reissue_detected():
    san = make_sanitizer()
    warp = types.SimpleNamespace(warp_id=0, block_id=0, clock=0.0)
    san.on_chunk(warp, arr(0, 1, 2))
    with pytest.raises(SanitizerError) as ei:
        san.on_chunk(warp, arr(2, 3))
    assert ei.value.rule == "X505"
    assert "issued twice" in str(ei.value)


def test_unowned_root_consumption_detected():
    san = make_sanitizer()
    warp = types.SimpleNamespace(warp_id=3, block_id=1, clock=5.0)
    san.on_chunk(warp, arr(0, 1))
    san.on_root_batch(warp, arr(0))
    with pytest.raises(SanitizerError) as ei:
        san.on_root_batch(warp, arr(0))  # consumed a second time
    assert ei.value.rule == "X505"
    assert "warp 3@block1" in ei.value.where


def test_finalize_flags_dropped_roots():
    san = make_sanitizer()
    warp = types.SimpleNamespace(warp_id=0, block_id=0, clock=0.0)
    san.on_chunk(warp, arr(7, 8))
    state = types.SimpleNamespace(stop_flag=False, tasks=[])
    with pytest.raises(SanitizerError) as ei:
        san.finalize(state)
    assert ei.value.rule == "X505"
    assert "never" in str(ei.value)


def test_finalize_skips_budget_stops():
    san = make_sanitizer()
    warp = types.SimpleNamespace(warp_id=0, block_id=0, clock=0.0)
    san.on_chunk(warp, arr(7, 8))
    san.finalize(types.SimpleNamespace(stop_flag=True, tasks=[]))  # no raise


# -- divide-and-copy checks ---------------------------------------------------


def steal_fixture(san):
    """A legal local steal: donor stack, pre-steal snapshot, stolen work."""
    warp = types.SimpleNamespace(warp_id=1, block_id=0, clock=10.0)
    stack = WarpStack()
    stack.push(root_frame(10, 11, 12, 13))
    stack.push(inner_frame(1, 10, 20, 21, 22, 23))
    snap = san.snapshot(stack)
    work = divide_and_copy(stack, san.config.stop_level)
    assert not work.empty
    return warp, stack, snap, work


def test_legal_steal_passes():
    san = make_sanitizer()
    warp, stack, snap, work = steal_fixture(san)
    san.on_steal("local", donor_warp=warp, donor_stack=stack,
                 snapshot=snap, work=work)
    assert san.checks > 0


def test_duplicated_segment_x501():
    san = make_sanitizer()
    warp, stack, snap, work = steal_fixture(san)
    # re-append a stolen tail to the donor: both own it now
    for i, sf in enumerate(work.frames):
        seg = sf.cand[sf.uiter][sf.iter:]
        if seg.size:
            df = stack.frames[i]
            df.cand[df.uiter] = np.concatenate([df.cand[df.uiter], seg])
            break
    with pytest.raises(SanitizerError) as ei:
        san.on_steal("local", donor_warp=warp, donor_stack=stack,
                     snapshot=snap, work=work)
    assert ei.value.rule == "X501"
    assert "duplicated" in str(ei.value)


def test_dropped_candidates_x502():
    san = make_sanitizer()
    warp, stack, snap, work = steal_fixture(san)
    for sf in work.frames:
        if sf.cand[sf.uiter].size:
            sf.cand[sf.uiter] = sf.cand[sf.uiter][:-1]
            break
    with pytest.raises(SanitizerError) as ei:
        san.on_steal("local", donor_warp=warp, donor_stack=stack,
                     snapshot=snap, work=work)
    assert ei.value.rule == "X502"
    assert "conservation" in str(ei.value)


def test_steal_beyond_stop_level_x503():
    san = make_sanitizer(stop_level=1)
    work = StolenWork(
        frames=[root_frame(1, 2), inner_frame(1, 1, 5, 6), inner_frame(2, 5, 7)],
        copied_elems=5,
    )
    warp = types.SimpleNamespace(warp_id=2, block_id=1, clock=0.0)
    with pytest.raises(SanitizerError) as ei:
        san.on_take(warp, work)
    assert ei.value.rule == "X503"
    assert "level 2" in ei.value.where


def test_error_carries_replay_trace():
    san = make_sanitizer()
    warp = types.SimpleNamespace(warp_id=0, block_id=0, clock=1.0)
    san.on_chunk(warp, arr(0, 1, 2))
    san.on_root_batch(warp, arr(0))
    with pytest.raises(SanitizerError) as ei:
        san.on_root_batch(warp, arr(0))
    msg = str(ei.value)
    assert "replay trace" in msg and "chunk" in msg and "consume" in msg


# -- engine integration -------------------------------------------------------


@pytest.mark.parametrize(
    "cfg",
    [
        EngineConfig.full(sanitize=True),
        EngineConfig.localsteal(sanitize=True),
        EngineConfig.local_global_steal(sanitize=True),
    ],
    ids=["full", "localsteal", "local+global"],
)
def test_sanitized_runs_reproduce_baseline_counts(skewed_graph, cfg):
    baseline = STMatchEngine(skewed_graph, EngineConfig.naive()).run(Q7)
    res = STMatchEngine(skewed_graph, cfg).run(Q7)
    assert res.matches == baseline.matches
    if cfg.local_steal:
        assert res.num_local_steals > 0  # the checks actually ran


def test_sanitize_verifies_plan_before_launch(skewed_graph):
    import dataclasses

    plan = build_plan(Q7)
    none = tuple(() for _ in range(plan.size))
    bad = dataclasses.replace(plan, restrictions=none)  # S202: dropped
    eng = STMatchEngine(skewed_graph, EngineConfig.full(sanitize=True))
    with pytest.raises(PlanVerificationError, match="S202"):
        eng.run(bad)


def _corrupting_engine(graph, corrupt, monkeypatch):
    """Engine whose local steals are corrupted by ``corrupt(stack, work)``."""
    import repro.core.kernel as kernel_mod

    def bad_divide(stack, stop_level):
        work = divide_and_copy(stack, stop_level)
        if not work.empty:
            corrupt(stack, work)
        return work

    monkeypatch.setattr(kernel_mod, "divide_and_copy", bad_divide)
    return STMatchEngine(graph, EngineConfig.localsteal(sanitize=True))


def test_engine_catches_duplicated_steal_segment(skewed_graph, monkeypatch):
    def duplicate(stack, work):
        for i, sf in enumerate(work.frames):
            seg = sf.cand[sf.uiter][sf.iter:]
            if seg.size:
                df = stack.frames[i]
                df.cand[df.uiter] = np.concatenate([df.cand[df.uiter], seg])
                return

    eng = _corrupting_engine(skewed_graph, duplicate, monkeypatch)
    with pytest.raises(SanitizerError) as ei:
        eng.run(Q7)
    assert ei.value.rule in ("X501", "X505")  # overlap, or re-consumed roots
    assert "warp" in ei.value.where and "block" in ei.value.where


def test_engine_catches_off_by_one_iter(skewed_graph, monkeypatch):
    def off_by_one(stack, work):
        for sf in work.frames:
            if sf.cand[sf.uiter].size:
                sf.iter = int(sf.cand[sf.uiter].size) + 1
                return

    eng = _corrupting_engine(skewed_graph, off_by_one, monkeypatch)
    with pytest.raises(SanitizerError) as ei:
        eng.run(Q7)
    assert ei.value.rule == "X504"
    assert "iter" in str(ei.value) and "level" in ei.value.where


def test_engine_catches_dropped_candidates(skewed_graph, monkeypatch):
    def drop_tail(stack, work):
        for sf in work.frames:
            if sf.cand[sf.uiter].size:
                sf.cand[sf.uiter] = sf.cand[sf.uiter][:-1]
                return

    eng = _corrupting_engine(skewed_graph, drop_tail, monkeypatch)
    with pytest.raises(SanitizerError) as ei:
        eng.run(Q7)
    assert ei.value.rule == "X502"
