"""1-hop-replicated partitioned execution: exactness + X512 protocol.

The partition tier's contract is *exactly-once counting*: every match
is rooted at exactly one vertex (its plan-order root), every root is
owned by exactly one shard, therefore the sum of shard counts equals
the whole-graph count — no dedup pass, no double counting.  This suite
pins that identity over the golden matrix (q1–q13 × {unlabeled,
labeled} × shard counts {2, 3, 4}), over uneven hand-cut ranges, over
a boundary-heavy powerlaw graph, through ``run_partitioned`` /
``run_multi_gpu`` / ``run_distributed`` / the process executor and
device-fail recovery, and mutation-tests analyzer rule X512 the same
way X506–X511 are: crafted protocol logs with overlapping claims,
gapped covers and malformed bounds must each trip it, and a clean
partitioned run must not.
"""

from __future__ import annotations

import os

import networkx as nx
import numpy as np
import pytest

from repro.analysis.races.events import ProtocolLog
from repro.analysis.races.hb import check_protocol
from repro.core.config import EngineConfig
from repro.core.counters import RunStatus
from repro.core.distributed import run_distributed
from repro.core.engine import STMatchEngine
from repro.core.multi_gpu import run_multi_gpu
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.graph.csr import CSRGraph
from repro.parallel import shutdown_pools
from repro.pattern import QUERIES, build_plan, get_query
from repro.scale import PartitionedGraph, VertexPartition
from tests import oracle

QUICK_QUERIES = ["q1", "q4", "q6", "q13"]


@pytest.fixture(scope="module", autouse=True)
def _controlled_backend():
    saved = {k: os.environ.pop(k, None)
             for k in ("REPRO_EXECUTOR", "REPRO_NUM_WORKERS",
                       "REPRO_GRAPH_BACKEND")}
    yield
    for k, v in saved.items():
        if v is not None:
            os.environ[k] = v
    shutdown_pools()


@pytest.fixture(scope="module")
def graphs():
    return oracle.corpus_graphs()


@pytest.fixture(scope="module")
def fixture():
    return oracle.load_fixture()


def x512_findings(log):
    return [d for d in check_protocol(log) if d.rule == "X512"]


class TestVertexPartition:
    @pytest.mark.parametrize("parts", [1, 2, 3, 4, 7])
    def test_balanced_covers(self, graphs, parts):
        for g in graphs.values():
            p = VertexPartition.balanced(g, parts)
            p.verify(g.num_vertices)
            assert p.num_parts == parts
            assert p.bounds[0] == 0 and p.bounds[-1] == g.num_vertices

    def test_balanced_is_edge_balanced(self, graphs):
        g = graphs["sparse"]
        p = VertexPartition.balanced(g, 4)
        arcs = [int(g.indptr[hi] - g.indptr[lo])
                for lo, hi in (p.range_of(i) for i in range(4))]
        # each shard within 2x of the ideal arc share (powerlaw skew
        # permitting) — a vertex-balanced cut would fail this on hubs
        ideal = g.indptr[-1] / 4
        assert max(arcs) <= 2 * ideal + g.max_degree()

    def test_verify_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            VertexPartition(bounds=(0, 5, 3, 10)).verify(10)
        with pytest.raises(ValueError):
            VertexPartition(bounds=(1, 10)).verify(10)
        with pytest.raises(ValueError):
            VertexPartition(bounds=(0, 5)).verify(10)

    def test_emit_cover(self, graphs):
        g = graphs["dense"]
        log = ProtocolLog()
        p = VertexPartition.balanced(g, 3)
        p.emit_cover(log, g.num_vertices)
        ev = log.by_kind("partition_cover")
        assert len(ev) == 1 and ev[0].data["n"] == g.num_vertices


class TestPartitionedGraph:
    def test_adjacency_equals_base(self, graphs):
        g = graphs["sparse"]
        p = VertexPartition.balanced(g, 4)
        for i in range(4):
            shard = PartitionedGraph.replicate(g, *p.range_of(i))
            for v in range(g.num_vertices):
                assert np.array_equal(shard.neighbors(v), g.neighbors(v))
            vs = np.arange(g.num_vertices, dtype=np.int64)
            sdata, soff = shard.neighbors_batch(vs)
            gdata, goff = g.neighbors_batch(vs)
            assert np.array_equal(sdata, gdata)
            assert np.array_equal(soff, goff)

    def test_replica_smaller_than_base(self, graphs):
        g = graphs["sparse"]
        shard = PartitionedGraph.replicate(g, *VertexPartition.balanced(
            g, 4).range_of(0))
        assert shard.device_graph_bytes() < g.device_graph_bytes()
        assert shard.local_num_vertices < g.num_vertices
        assert shard.replication_ratio() >= 1.0

    def test_replicate_memoized(self, graphs):
        g = graphs["dense"]
        a = PartitionedGraph.replicate(g, 0, 10)
        assert PartitionedGraph.replicate(g, 0, 10) is a
        assert PartitionedGraph.replicate(g, 0, 11) is not a

    def test_no_nested_partitioning(self, graphs):
        shard = PartitionedGraph.replicate(graphs["dense"], 0, 10)
        with pytest.raises(TypeError):
            PartitionedGraph.replicate(shard, 0, 5)

    def test_bad_range_rejected(self, graphs):
        g = graphs["dense"]
        with pytest.raises(ValueError):
            PartitionedGraph.replicate(g, 7, 5)
        with pytest.raises(ValueError):
            PartitionedGraph.replicate(g, -1, 5)
        with pytest.raises(ValueError):
            PartitionedGraph.replicate(g, 0, g.num_vertices + 1)

    def test_empty_range_is_valid_degenerate_shard(self, graphs):
        """balanced() collapses surplus shards to empty ranges; an
        empty shard owns nothing and counts nothing."""
        g = graphs["dense"]
        shard = PartitionedGraph.replicate(g, 5, 5)
        assert shard.local_num_vertices == 0
        res = STMatchEngine(shard).run(get_query("q1"),
                                       root_vertices=(5, 5))
        assert res.matches == 0


class TestRangeIdentity:
    """Partitioned counts equal whole-graph counts equal golden."""

    @pytest.mark.parametrize("gname", ["sparse", "dense"])
    @pytest.mark.parametrize("qname", oracle.ORACLE_QUERIES)
    def test_three_shards_full_matrix(self, graphs, fixture, gname, qname):
        g = graphs[gname]
        want = fixture["counts"][gname]["unlabeled"][qname]
        log = ProtocolLog()
        res = run_multi_gpu(g, get_query(qname), num_devices=3,
                            config=EngineConfig(partition_mode="range"),
                            protocol_log=log)
        assert res.status == "ok" and res.matches == want
        assert not x512_findings(log)
        assert len(log.by_kind("partition_cover")) == 1
        assert len(log.by_kind("root_claim")) == 3

    @pytest.mark.parametrize("gname", ["sparse", "dense"])
    @pytest.mark.parametrize("qname", oracle.ORACLE_QUERIES)
    def test_three_shards_labeled(self, graphs, fixture, gname, qname):
        lg, lq = oracle.labeled_pair(graphs[gname], QUERIES[qname])
        want = fixture["counts"][gname]["labeled"][qname]
        res = run_multi_gpu(lg, lq, num_devices=3,
                            config=EngineConfig(partition_mode="range"))
        assert res.matches == want

    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("qname", QUICK_QUERIES)
    def test_other_shard_counts(self, graphs, fixture, shards, qname):
        for gname, g in graphs.items():
            want = fixture["counts"][gname]["unlabeled"][qname]
            res = run_multi_gpu(g, get_query(qname), num_devices=shards,
                                config=EngineConfig(partition_mode="range"))
            assert res.matches == want, (gname, qname, shards)

    def test_uneven_hand_cut_ranges(self, graphs, fixture):
        """Sum over arbitrary uneven ranges == whole count."""
        g = graphs["sparse"]
        bounds = (0, 1, 7, 40, g.num_vertices)  # deliberately lopsided
        VertexPartition(bounds=bounds).verify(g.num_vertices)
        plan = build_plan(get_query("q4"))
        total = 0
        for lo, hi in zip(bounds, bounds[1:]):
            shard = PartitionedGraph.replicate(g, lo, hi)
            total += STMatchEngine(shard).run(
                plan, root_vertices=(lo, hi)).matches
        assert total == fixture["counts"]["sparse"]["unlabeled"]["q4"]

    def test_boundary_heavy_powerlaw(self):
        """Dense powerlaw: nearly every shard replicates most of the
        graph as boundary — ownership filtering still counts once."""
        g = CSRGraph.from_networkx(
            nx.powerlaw_cluster_graph(60, 6, 0.8, seed=13), name="heavy")
        want = STMatchEngine(g).run(get_query("q4")).matches
        log = ProtocolLog()
        res = run_multi_gpu(g, get_query("q4"), num_devices=4,
                            config=EngineConfig(partition_mode="range"),
                            protocol_log=log)
        assert res.matches == want
        assert not x512_findings(log)
        shard = PartitionedGraph.replicate(
            g, *VertexPartition.balanced(g, 4).range_of(1))
        assert shard.replication_ratio() > 1.5  # genuinely boundary-heavy

    def test_run_partitioned_range_mode(self, graphs, fixture):
        g = graphs["dense"]
        eng = STMatchEngine(g, EngineConfig(partition_mode="range"))
        log = ProtocolLog()
        res = eng.run_partitioned(get_query("q6"), num_partitions=3,
                                  protocol_log=log)
        assert res.matches == fixture["counts"]["dense"]["unlabeled"]["q6"]
        assert not x512_findings(log)

    def test_replicate_mode_unchanged(self, graphs, fixture):
        """Default round-robin partitioning is untouched by this tier."""
        g = graphs["dense"]
        res = run_multi_gpu(g, get_query("q6"), num_devices=3)
        assert res.matches == fixture["counts"]["dense"]["unlabeled"]["q6"]

    def test_memmap_plus_range(self, graphs, fixture):
        """Both tiers compose: memmap backend under range partitioning."""
        g = graphs["sparse"]
        cfg = EngineConfig(partition_mode="range", graph_backend="memmap")
        res = run_multi_gpu(g, get_query("q1"), num_devices=3, config=cfg)
        assert res.matches == fixture["counts"]["sparse"]["unlabeled"]["q1"]


class TestRangeAcrossDrivers:
    def test_process_executor_identity(self, graphs, fixture):
        g = graphs["sparse"]
        cfg = EngineConfig(partition_mode="range", executor="process",
                           num_workers=2)
        try:
            res = run_multi_gpu(g, get_query("q4"), num_devices=2,
                                config=cfg)
        finally:
            shutdown_pools()
        assert res.matches == fixture["counts"]["sparse"]["unlabeled"]["q4"]

    def test_distributed_identity(self, graphs, fixture):
        g = graphs["sparse"]
        res = run_distributed(g, get_query("q4"), num_machines=2,
                              gpus_per_machine=2,
                              config=EngineConfig(partition_mode="range"))
        assert res.matches == fixture["counts"]["sparse"]["unlabeled"]["q4"]

    def test_device_fail_recovery(self, graphs, fixture):
        """A dead shard's range is re-hosted; the total stays exact and
        the re-claim (same key, same range) does not trip X512."""
        g = graphs["sparse"]
        log = ProtocolLog()
        plan = FaultPlan(events=tuple(
            FaultEvent(FaultKind.DEVICE_FAIL, device=1, attempt=a,
                       at_cycle=0.0)
            for a in range(4)  # exhaust retries: force a re-queue
        ))
        res = run_multi_gpu(g, get_query("q4"), num_devices=3,
                            config=EngineConfig(partition_mode="range"),
                            fault_plan=plan, max_retries=3,
                            protocol_log=log)
        assert res.status == RunStatus.RECOVERED
        assert res.matches == fixture["counts"]["sparse"]["unlabeled"]["q4"]
        assert not x512_findings(log)
        assert len(log.by_kind("root_claim")) >= 4  # 3 + the re-claim


class TestX512Mutation:
    """The rule actually fires — crafted violations, like X506–X511."""

    N = 100

    def cover(self, log, bounds=(0, 50, 100)):
        log.emit("partition_cover", bounds=list(bounds), n=self.N)

    def test_overlapping_claims_trip(self):
        log = ProtocolLog()
        self.cover(log)
        log.emit("root_claim", key=(0, 2), lo=0, hi=60, n=self.N)
        log.emit("root_claim", key=(1, 2), lo=50, hi=100, n=self.N)
        found = x512_findings(log)
        assert found and "overlap" in found[0].message

    def test_gap_trips(self):
        log = ProtocolLog()
        self.cover(log)
        log.emit("root_claim", key=(0, 2), lo=0, hi=40, n=self.N)
        log.emit("root_claim", key=(1, 2), lo=50, hi=100, n=self.N)
        found = x512_findings(log)
        assert found and "40" in found[0].message

    def test_missing_shard_is_a_gap(self):
        log = ProtocolLog()
        self.cover(log)
        log.emit("root_claim", key=(0, 2), lo=0, hi=50, n=self.N)
        assert x512_findings(log)

    def test_malformed_cover_trips(self):
        log = ProtocolLog()
        log.emit("partition_cover", bounds=[0, 60, 50, 100], n=self.N)
        assert x512_findings(log)
        log2 = ProtocolLog()
        log2.emit("partition_cover", bounds=[5, 100], n=self.N)
        assert x512_findings(log2)

    def test_same_key_reclaim_is_legitimate(self):
        log = ProtocolLog()
        self.cover(log)
        log.emit("root_claim", key=(0, 2), lo=0, hi=50, n=self.N)
        log.emit("root_claim", key=(1, 2), lo=50, hi=100, n=self.N)
        log.emit("root_claim", key=(1, 2), lo=50, hi=100, n=self.N)  # requeue
        assert not x512_findings(log)

    def test_same_key_different_range_trips(self):
        log = ProtocolLog()
        self.cover(log)
        log.emit("root_claim", key=(0, 2), lo=0, hi=50, n=self.N)
        log.emit("root_claim", key=(0, 2), lo=0, hi=60, n=self.N)
        log.emit("root_claim", key=(1, 2), lo=50, hi=100, n=self.N)
        assert x512_findings(log)

    def test_clean_log_passes(self):
        log = ProtocolLog()
        self.cover(log, bounds=(0, 30, 50, 100))
        for i, (lo, hi) in enumerate([(0, 30), (30, 50), (50, 100)]):
            log.emit("root_claim", key=(i, 3), lo=lo, hi=hi, n=self.N)
        assert not x512_findings(log)

    def test_broken_ownership_filter_end_to_end(self, graphs, fixture):
        """Simulate the bug X512 exists for: two shards both own a
        vertex range.  The honest claims trip the checker AND the sum
        double counts — the rule fires exactly when counts go wrong."""
        g = graphs["sparse"]
        plan = build_plan(get_query("q4"))
        n = g.num_vertices
        bounds = (0, 24, n)
        ranges = [(0, 30), (24, n)]  # overlap [24, 30): the "bug"
        log = ProtocolLog()
        log.emit("partition_cover", bounds=list(bounds), n=n)
        total = 0
        for i, (lo, hi) in enumerate(ranges):
            log.emit("root_claim", key=(i, 2), lo=lo, hi=hi, n=n)
            shard = PartitionedGraph.replicate(g, lo, hi)
            total += STMatchEngine(shard).run(
                plan, root_vertices=(lo, hi)).matches
        want = fixture["counts"]["sparse"]["unlabeled"]["q4"]
        assert total > want  # matches rooted in [24, 30) counted twice
        assert x512_findings(log)  # and the analyzer says why
