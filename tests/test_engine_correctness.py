"""Integration tests: the STMatch engine against the reference oracle.

These are the core correctness guarantees — every engine configuration
(stealing variants, unroll sizes, code motion on/off, labeled/unlabeled,
edge-/vertex-induced) must count exactly what Algorithm 1 counts.
"""

import numpy as np
import pytest

from repro import EngineConfig, STMatchEngine, get_query
from repro.baselines import count_matches_recursive, count_via_networkx
from repro.graph import assign_random_labels, erdos_renyi, powerlaw_cluster
from repro.graph.labels import relabel_query_consistently
from repro.pattern import QueryGraph


@pytest.fixture(scope="module")
def small_graph():
    return erdos_renyi(36, 0.25, seed=13)


@pytest.fixture(scope="module")
def skewed_graph():
    return powerlaw_cluster(70, m=3, p_triangle=0.6, seed=5)


class TestAgainstOracle:
    @pytest.mark.parametrize("name", ["q1", "q2", "q4", "q5", "q7", "q8"])
    @pytest.mark.parametrize("vertex_induced", [False, True])
    def test_size5_queries(self, small_graph, name, vertex_induced):
        eng = STMatchEngine(small_graph)
        plan = eng.plan(get_query(name), vertex_induced=vertex_induced)
        assert eng.run(plan).matches == count_matches_recursive(small_graph, plan)

    @pytest.mark.parametrize("name", ["q9", "q13", "q16"])
    def test_size6_queries(self, small_graph, name):
        eng = STMatchEngine(small_graph)
        plan = eng.plan(get_query(name))
        assert eng.run(plan).matches == count_matches_recursive(small_graph, plan)

    def test_size7_clique(self, skewed_graph):
        eng = STMatchEngine(skewed_graph)
        plan = eng.plan(get_query("q24"))
        assert eng.run(plan).matches == count_matches_recursive(skewed_graph, plan)

    @pytest.mark.parametrize("name", ["q2", "q7"])
    def test_embedding_mode(self, small_graph, name):
        eng = STMatchEngine(small_graph)
        plan = eng.plan(get_query(name), symmetry_breaking=False)
        got = eng.run(plan).matches
        assert got == count_via_networkx(small_graph, get_query(name), count_embeddings=True)


class TestConfigurations:
    CONFIGS = [
        ("naive", EngineConfig.naive()),
        ("localsteal", EngineConfig.localsteal()),
        ("local+global", EngineConfig.local_global_steal()),
        ("full", EngineConfig.full()),
        ("no-motion", EngineConfig(code_motion=False)),
        ("unroll-2", EngineConfig(unroll=2)),
        ("unroll-16", EngineConfig(unroll=16)),
        ("chunk-1", EngineConfig(chunk_size=1)),
        ("stop-0", EngineConfig(stop_level=0)),
        ("stop-4", EngineConfig(stop_level=4, detect_level=4)),
    ]

    @pytest.mark.parametrize("label,cfg", CONFIGS, ids=[c[0] for c in CONFIGS])
    def test_all_configs_agree(self, skewed_graph, label, cfg):
        q = get_query("q7")
        ref_plan = STMatchEngine(skewed_graph).plan(q)
        ref = count_matches_recursive(skewed_graph, ref_plan)
        assert STMatchEngine(skewed_graph, cfg).run(q).matches == ref

    def test_tiny_device(self, small_graph):
        from repro.virtgpu.device import DeviceConfig

        cfg = EngineConfig(device=DeviceConfig(num_blocks=1, warps_per_block=2))
        q = get_query("q5")
        ref = count_matches_recursive(small_graph, STMatchEngine(small_graph).plan(q))
        assert STMatchEngine(small_graph, cfg).run(q).matches == ref

    def test_single_warp_device(self, small_graph):
        from repro.virtgpu.device import DeviceConfig

        cfg = EngineConfig(device=DeviceConfig(num_blocks=1, warps_per_block=1))
        q = get_query("q2")
        ref = count_matches_recursive(small_graph, STMatchEngine(small_graph).plan(q))
        assert STMatchEngine(small_graph, cfg).run(q).matches == ref


class TestLabeled:
    @pytest.fixture(scope="class")
    def labeled_graph(self):
        return assign_random_labels(erdos_renyi(40, 0.3, seed=9), num_labels=4, seed=3)

    @pytest.mark.parametrize("vertex_induced", [False, True])
    def test_labeled_counts(self, labeled_graph, vertex_induced):
        q = get_query("q5")
        lab = relabel_query_consistently(np.array([0, 1, 2, 0, 1]), labeled_graph, seed=2)
        ql = q.with_labels(lab)
        eng = STMatchEngine(labeled_graph)
        plan = eng.plan(ql, vertex_induced=vertex_induced)
        assert eng.run(plan).matches == count_matches_recursive(labeled_graph, plan)

    def test_labeled_no_motion_agrees(self, labeled_graph):
        q = get_query("q5").with_labels(
            relabel_query_consistently(np.array([0, 0, 1, 1, 2]), labeled_graph, seed=4)
        )
        a = STMatchEngine(labeled_graph, EngineConfig()).run(q).matches
        b = STMatchEngine(labeled_graph, EngineConfig(code_motion=False)).run(q).matches
        assert a == b

    def test_unsatisfiable_label(self, labeled_graph):
        # a label value that exists keeps counts >= 0; a non-occurring
        # label yields zero matches
        q = get_query("q1").with_labels([99, 99, 99, 99, 99])
        assert STMatchEngine(labeled_graph).run(q).matches == 0

    def test_labeled_plan_on_unlabeled_graph_rejected(self, small_graph):
        q = get_query("q1").with_labels([0, 0, 0, 0, 0])
        with pytest.raises(ValueError):
            STMatchEngine(small_graph).run(q)


class TestEnumeration:
    def test_callback_receives_valid_matches(self, small_graph):
        q = get_query("q2")  # 5-cycle
        eng = STMatchEngine(small_graph)
        plan = eng.plan(q)
        seen = []
        res = eng.run(plan, on_match=seen.append)
        assert len(seen) == res.matches
        rq = plan.query
        for m in seen[:50]:
            assert len(set(m)) == len(m)  # injective
            for i in range(len(m)):
                for j in range(i + 1, len(m)):
                    if rq.adj[i, j]:
                        assert small_graph.has_edge(m[i], m[j])

    def test_callback_matches_are_unique(self, small_graph):
        q = get_query("q7")
        eng = STMatchEngine(small_graph)
        seen = []
        eng.run(q, on_match=seen.append)
        assert len(seen) == len(set(seen))

    def test_vertex_induced_callback_excludes_extra_edges(self, small_graph):
        q = get_query("q1")  # path5: vertex-induced forbids chords
        eng = STMatchEngine(small_graph)
        plan = eng.plan(q, vertex_induced=True)
        seen = []
        eng.run(plan, on_match=seen.append)
        rq = plan.query
        for m in seen[:50]:
            for i in range(len(m)):
                for j in range(i + 1, len(m)):
                    assert small_graph.has_edge(m[i], m[j]) == bool(rq.adj[i, j])


class TestEdgeCases:
    def test_empty_graph(self):
        from repro.graph import CSRGraph

        g = CSRGraph.from_edges(10, [])
        assert STMatchEngine(g).run(get_query("q1")).matches == 0

    def test_single_vertex_query(self, small_graph):
        q = QueryGraph.from_edges(1, [])
        res = STMatchEngine(small_graph).run(q)
        assert res.matches == small_graph.num_vertices

    def test_two_vertex_query_counts_edges(self, small_graph):
        q = QueryGraph.from_edges(2, [(0, 1)])
        res = STMatchEngine(small_graph).run(q)
        assert res.matches == small_graph.num_edges  # sym-break: each edge once

    def test_query_larger_than_any_match(self):
        g = erdos_renyi(12, 0.1, seed=1)
        assert STMatchEngine(g).run(get_query("q24")).matches == 0

    def test_budget_truncates(self, small_graph):
        from repro.core.counters import RunStatus

        cfg = EngineConfig(max_results=10)
        res = STMatchEngine(small_graph, cfg).run(get_query("q1"))
        assert res.status == RunStatus.BUDGET
        assert res.matches >= 10

    def test_root_range_partition_covers_everything(self, small_graph):
        q = get_query("q5")
        eng = STMatchEngine(small_graph)
        plan = eng.plan(q)
        full = eng.run(plan).matches
        from repro.core.candidates import CandidateComputer

        n_roots = CandidateComputer(small_graph, plan, eng.config).root_candidates.size
        mid = n_roots // 2
        a = eng.run(plan, root_range=(0, mid)).matches
        b = eng.run(plan, root_range=(mid, n_roots)).matches
        assert a + b == full
