"""Chaos-under-load for the match service (pool-backed).

A FaultPlan kills targeted pool attempts (via
:func:`request_attempt_offset`), driving the full failure path:
pool-infrastructure failure detection → seeded retry → circuit breaker
opening → degraded in-thread answers while open → half-open probe →
close.  The invariant audited throughout is the service's version of
the recovery layer's X506 promise: **every countable response equals
the golden count**, degradation is always explicitly marked, and the
request-scoped protocol events satisfy X511.
"""

from __future__ import annotations

import pytest

from repro.analysis.races import ProtocolLog
from repro.analysis.races.hb import check_protocol
from repro.core.config import EngineConfig
from repro.core.engine import STMatchEngine
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.parallel import shutdown_pools
from repro.pattern import QUERIES
from repro.serve import (
    ATTEMPT_STRIDE,
    BreakerState,
    CircuitBreaker,
    MatchRequest,
    MatchService,
    ResponseStatus,
    RetryPolicy,
    request_attempt_offset,
)

from tests import oracle

pytestmark = pytest.mark.slow


@pytest.fixture(autouse=True)
def _controlled_backend(monkeypatch):
    monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
    monkeypatch.delenv("REPRO_NUM_WORKERS", raising=False)
    yield
    shutdown_pools()


@pytest.fixture(scope="module")
def graph():
    return oracle.corpus_graphs()["sparse"]


@pytest.fixture(scope="module")
def golden(graph):
    eng = STMatchEngine(graph, EngineConfig())
    return {qn: eng.run(QUERIES[qn]).matches for qn in ("q1", "q2", "q3")}


def crash_plan(*keys: str) -> FaultPlan:
    """Kill every pool attempt of the given idempotency keys."""
    events = [
        FaultEvent(FaultKind.WORKER_CRASH, device=0,
                   attempt=request_attempt_offset(k, a))
        for k in keys for a in range(ATTEMPT_STRIDE)
    ]
    return FaultPlan(events=tuple(events), seed=1)


def pool_config() -> EngineConfig:
    return EngineConfig(executor="process", num_workers=2,
                        worker_timeout_s=60.0)


def test_targeted_crash_retries_then_degrades_with_exact_count(graph, golden):
    clk = [0.0]
    log = ProtocolLog()
    svc = MatchService(
        {"g": graph}, pool_config(),
        breaker=CircuitBreaker(failure_threshold=5, cooldown_s=10.0,
                               clock=lambda: clk[0]),
        retry=RetryPolicy(max_attempts=2, base_backoff_s=0.0,
                          max_backoff_s=0.0),
        fault_plan=crash_plan("boom"),
        protocol_log=log,
    )
    r = svc.match(MatchRequest(graph="g", query=QUERIES["q1"],
                               idempotency_key="boom"))
    # both pool attempts died; the answer came from the in-thread rung,
    # degraded but exact
    assert r.status == ResponseStatus.OK
    assert r.degraded and r.degrade_level == 1
    assert r.countable and r.matches == golden["q1"]
    assert r.attempts == 3  # 2 pool attempts + 1 inline
    assert "failed" in r.detail
    assert svc.breaker.state == BreakerState.CLOSED  # under threshold
    assert svc.stats()["requests"]["retries"] == 1
    assert not check_protocol(log.events).diagnostics


def test_untargeted_requests_ride_the_pool_unharmed(graph, golden):
    svc = MatchService({"g": graph}, pool_config(),
                       fault_plan=crash_plan("boom"))
    r = svc.match(MatchRequest(graph="g", query=QUERIES["q2"],
                               idempotency_key="calm"))
    assert r.countable and not r.degraded
    assert r.matches == golden["q2"]
    assert r.attempts == 1


def test_breaker_lifecycle_under_sustained_crashes(graph, golden):
    clk = [0.0]
    log = ProtocolLog()
    svc = MatchService(
        {"g": graph}, pool_config(),
        breaker=CircuitBreaker(failure_threshold=2, cooldown_s=10.0,
                               clock=lambda: clk[0]),
        retry=RetryPolicy(max_attempts=2, base_backoff_s=0.0,
                          max_backoff_s=0.0),
        fault_plan=crash_plan("boom-0", "boom-1"),
        protocol_log=log,
    )
    # two dead pool attempts reach the threshold: the breaker opens
    r0 = svc.match(MatchRequest(graph="g", query=QUERIES["q1"],
                                idempotency_key="boom-0"))
    assert r0.countable and r0.matches == golden["q1"] and r0.degraded
    assert svc.breaker.state == BreakerState.OPEN

    # while open: no pool attempts at all, degraded answers, still exact
    r1 = svc.match(MatchRequest(graph="g", query=QUERIES["q2"],
                                idempotency_key="boom-1"))
    assert r1.countable and r1.matches == golden["q2"]
    assert r1.degraded and r1.degrade_level == 1
    assert "breaker" in r1.detail
    assert r1.attempts == 1  # inline only — the pool was never touched

    # cooldown elapses: half-open, a clean probe closes it
    clk[0] = 11.0
    r2 = svc.match(MatchRequest(graph="g", query=QUERIES["q3"]))
    assert r2.countable and r2.matches == golden["q3"]
    assert not r2.degraded
    assert svc.breaker.state == BreakerState.CLOSED
    trail = [(t["from"], t["to"]) for t in svc.breaker.transitions]
    assert trail == [
        (BreakerState.CLOSED, BreakerState.OPEN),
        (BreakerState.OPEN, BreakerState.HALF_OPEN),
        (BreakerState.HALF_OPEN, BreakerState.CLOSED),
    ]
    assert not check_protocol(log.events).diagnostics


def test_degraded_responses_never_silently_claim_exactness(graph, golden):
    # breaker held open by construction: every response while open must
    # be marked degraded with a reason, yet counts stay exact
    clk = [0.0]
    breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1000.0,
                             clock=lambda: clk[0])
    breaker.record_failure("pre-opened")
    svc = MatchService({"g": graph}, pool_config(), breaker=breaker)
    for qn in ("q1", "q2"):
        r = svc.match(MatchRequest(graph="g", query=QUERIES[qn]))
        assert r.degraded and r.detail
        assert r.countable and r.matches == golden[qn]


def test_idempotent_retry_after_crash_never_double_counts(graph, golden):
    log = ProtocolLog()
    svc = MatchService(
        {"g": graph}, pool_config(),
        retry=RetryPolicy(max_attempts=2, base_backoff_s=0.0,
                          max_backoff_s=0.0),
        fault_plan=crash_plan("boom"),
        protocol_log=log,
    )
    a = svc.match(MatchRequest(graph="g", query=QUERIES["q1"],
                               idempotency_key="boom"))
    b = svc.match(MatchRequest(graph="g", query=QUERIES["q1"],
                               idempotency_key="boom"))
    assert a.countable and a.matches == golden["q1"]
    assert b.served_from == "idempotency" and b.matches == a.matches
    kinds = [e.kind for e in log.events]
    assert kinds.count("request_commit") == 1  # X511: exactly one commit
    assert kinds.count("request_replay") == 1
    assert not check_protocol(log.events).diagnostics
