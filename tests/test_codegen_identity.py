"""The compiled codegen tier's contract: byte-identical everything.

``EngineConfig.codegen`` swaps the interpreted plan-IR fast path for a
per-(query, schedule) emitted Python module (``repro.codegen``).  The
generated kernels must issue identical cycle charges in identical
order, so every observable — match count, simulated cycle total, run
status, steal counts, budget truncation point — is byte-identical
across all three backends (reference, interpreted fastpath, codegen).
These tests pin that 3-way identity over the paper's q1–q13 ×
labeled/unlabeled × unroll factors, check engine counts against the
golden-count oracle fixture, exercise the sanitizer and the process
executor under the compiled tier, and pin the infrastructure itself:
deterministic re-emission, the plan-keyed LRU code cache, the B408
source-budget lint and the ``REPRO_CODEGEN`` override.
"""

import os

import numpy as np
import pytest

from repro import EngineConfig, STMatchEngine
from repro.analysis.budget import lint_budget
from repro.analysis.diagnostics import RULE_REGISTRY
from repro.codegen import LRUCache, resolve_codegen
from repro.codegen.compile import (
    clear_code_cache,
    code_cache_stats,
    compiled_kernel,
)
from repro.codegen.emit import codegen_key, emit_kernel_source
from repro.core.counters import RunStatus
from repro.core.engine import cached_plan, plan_cache_stats
from repro.core.multi_gpu import run_multi_gpu
from repro.graph import CSRGraph
from repro.graph.labels import assign_random_labels, relabel_query_consistently
from repro.parallel import shutdown_pools
from repro.pattern import QUERIES
from tests import oracle

QUERY_NAMES = [f"q{i}" for i in range(1, 14)]


@pytest.fixture(scope="module", autouse=True)
def _controlled_backend():
    """The A/B below sets codegen/executor explicitly: neutralize
    CI-matrix env overrides for this module, and drop worker pools
    afterwards."""
    saved = {k: os.environ.pop(k, None)
             for k in ("REPRO_CODEGEN", "REPRO_EXECUTOR", "REPRO_NUM_WORKERS")}
    yield
    for k, v in saved.items():
        if v is not None:
            os.environ[k] = v
    shutdown_pools()


def _random_graph(n: int, density: float, seed: int) -> CSRGraph:
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < density
    edges = [(i, j) for i in range(n) for j in range(i + 1, n) if mask[i, j]]
    return CSRGraph.from_edges(n, edges)


def _labeled_pair(g, q, num_labels=3, seed=7):
    lg = assign_random_labels(g, num_labels=num_labels, seed=seed)
    abstract = np.arange(q.size, dtype=np.int32) % num_labels
    bound = relabel_query_consistently(abstract, lg, seed=seed)
    return lg, q.with_labels(bound)


def _fingerprint(res):
    return (res.matches, res.cycles, res.status,
            res.num_local_steals, res.num_global_steals)


def _run_three_way(graph, query, **cfg_kw):
    """Reference, interpreted fastpath, and codegen runs of one cell."""
    ref = STMatchEngine(
        graph, EngineConfig(fastpath=False, **cfg_kw)).run(query)
    fast = STMatchEngine(
        graph, EngineConfig(fastpath=True, **cfg_kw)).run(query)
    cg = STMatchEngine(
        graph, EngineConfig(fastpath=True, codegen=True, **cfg_kw)).run(query)
    return ref, fast, cg


def _assert_three_way(ref, fast, cg):
    assert _fingerprint(ref) == _fingerprint(fast)
    assert _fingerprint(fast) == _fingerprint(cg)


class TestThreeWayIdentity:
    """q1–q13 × labeling: reference == fastpath == codegen."""

    @pytest.mark.parametrize("qname", QUERY_NAMES)
    @pytest.mark.parametrize("labeled", [False, True],
                             ids=["unlabeled", "labeled"])
    def test_matches_cycles_steals_identical(self, qname, labeled):
        g = _random_graph(26, 0.3, seed=11)
        q = QUERIES[qname]
        if labeled:
            g, q = _labeled_pair(g, q)
        _assert_three_way(*_run_three_way(g, q, max_results=40_000))

    @pytest.mark.parametrize("unroll", [1, 4, 8])
    def test_unroll_factors(self, unroll):
        g = _random_graph(22, 0.35, seed=5)
        for qname in ("q2", "q4", "q7"):
            _assert_three_way(
                *_run_three_way(g, QUERIES[qname], unroll=unroll))

    def test_vertex_induced(self):
        g = _random_graph(20, 0.4, seed=3)
        q = QUERIES["q4"]
        runs = [
            STMatchEngine(g, EngineConfig(fastpath=fp, codegen=cg)).run(
                q, vertex_induced=True)
            for fp, cg in ((False, False), (True, False), (True, True))
        ]
        _assert_three_way(*runs)

    def test_sanitizer_on(self):
        # the runtime sanitizer observes the same steal protocol either way
        g = _random_graph(24, 0.3, seed=9)
        for qname in ("q1", "q5"):
            _assert_three_way(
                *_run_three_way(g, QUERIES[qname], sanitize=True,
                                max_results=40_000))

    def test_budget_truncation_point(self):
        # identical charge order means identical truncation under budget
        g = _random_graph(24, 0.35, seed=13)
        _assert_three_way(*_run_three_way(g, QUERIES["q5"], max_results=500))


class TestGoldenCounts:
    """Codegen counts equal the checked-in VF2 ground truth."""

    @pytest.fixture(scope="class")
    def fixture(self):
        return oracle.load_fixture()

    @pytest.fixture(scope="class")
    def graphs(self):
        return oracle.corpus_graphs()

    @pytest.mark.parametrize("gname,qname", [
        ("sparse", "q1"), ("sparse", "q5"), ("sparse", "q7"),
        ("dense", "q6"), ("dense", "q13"),
    ])
    @pytest.mark.parametrize("mode", ["unlabeled", "labeled"])
    def test_codegen_equals_golden_count(self, fixture, graphs, gname,
                                         qname, mode):
        g, q = graphs[gname], QUERIES[qname]
        if mode == "labeled":
            g, q = oracle.labeled_pair(g, q)
        res = STMatchEngine(
            g, EngineConfig(fastpath=True, codegen=True)).run(q)
        assert res.status == RunStatus.OK, repr(res)
        assert res.matches == fixture["counts"][gname][mode][qname]


class TestProcessExecutor:
    """The compiled tier under the process backend: kernels are
    re-derived worker-side from the pickled plan + config, never
    shipped — results stay byte-identical to serial."""

    def test_two_workers_identical(self):
        g = oracle.corpus_graphs()["sparse"]
        q = QUERIES["q5"]
        serial = run_multi_gpu(
            g, q, 2, EngineConfig(fastpath=True, codegen=True,
                                  executor="serial"))
        process = run_multi_gpu(
            g, q, 2, EngineConfig(fastpath=True, codegen=True,
                                  executor="process", num_workers=2))
        baseline = run_multi_gpu(g, q, 2, EngineConfig(fastpath=True))
        assert serial.ok
        assert process.matches == serial.matches == baseline.matches
        assert process.sim_ms == serial.sim_ms == baseline.sim_ms
        assert process.status == serial.status
        assert ([(r.matches, r.cycles, r.status) for r in process.per_device]
                == [(r.matches, r.cycles, r.status) for r in serial.per_device])


class TestEmissionDeterminism:
    def test_reemit_is_byte_identical(self):
        g = _random_graph(26, 0.3, seed=11)
        cfg = EngineConfig(fastpath=True, codegen=True)
        for qname in QUERY_NAMES:
            plan = cached_plan(g, QUERIES[qname])
            first = emit_kernel_source(plan, cfg)
            assert emit_kernel_source(plan, cfg) == first

    def test_key_and_source_are_graph_independent(self):
        # two different data graphs, same query + resolved schedule:
        # one cache key, one emitted module
        g1 = _random_graph(26, 0.3, seed=11)
        g2 = _random_graph(40, 0.2, seed=23)
        cfg = EngineConfig(fastpath=True, codegen=True)
        p1 = cached_plan(g1, QUERIES["q5"])
        p2 = cached_plan(g2, QUERIES["q5"], order=tuple(p1.order))
        assert codegen_key(p1, cfg) == codegen_key(p2, cfg)
        assert emit_kernel_source(p1, cfg) == emit_kernel_source(p2, cfg)

    def test_source_has_no_graph_constants(self):
        g = _random_graph(26, 0.3, seed=11)
        src = emit_kernel_source(cached_plan(g, QUERIES["q3"]),
                                 EngineConfig(fastpath=True))
        # graph state is only reachable through the computer instance C
        for forbidden in (str(g.num_vertices), "indices[", "labels["):
            assert forbidden not in src.replace("slot_arr + 1", "")


class TestCodeCache:
    def test_compile_once_then_hit(self):
        g = _random_graph(26, 0.3, seed=11)
        plan = cached_plan(g, QUERIES["q2"])
        cfg = EngineConfig(fastpath=True, codegen=True)
        clear_code_cache(reset_stats=True)
        k1 = compiled_kernel(plan, cfg)
        k2 = compiled_kernel(plan, cfg)
        assert k1 is k2
        stats = code_cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1
        clear_code_cache(reset_stats=True)

    def test_lru_counts_and_evicts(self):
        lru = LRUCache(2, name="t")
        assert lru.get("a") is None
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1  # refreshes recency
        lru.put("c", 3)  # evicts b (coldest)
        assert lru.get("b") is None
        assert lru.get("a") == 1
        assert lru.stats() == {"hits": 2, "misses": 2, "evictions": 1,
                               "size": 2, "capacity": 2}

    def test_plan_cache_counters_exposed(self):
        g = _random_graph(20, 0.3, seed=17)
        cfg = EngineConfig(fastpath=True, codegen=True)
        before = plan_cache_stats(g)["hits"]
        eng = STMatchEngine(g, cfg)
        eng.run(QUERIES["q1"])
        eng.run(QUERIES["q1"])
        after = plan_cache_stats(g)
        assert after["hits"] > before
        assert after["size"] >= 1

    def test_observed_report_carries_cache_counters(self):
        g = _random_graph(20, 0.3, seed=17)
        res = STMatchEngine(
            g, EngineConfig(fastpath=True, codegen=True, observe=True)
        ).run(QUERIES["q1"])
        caches = res.report["caches"]
        for name in ("plan", "codegen"):
            for counter in ("hits", "misses", "evictions", "size", "capacity"):
                assert isinstance(caches[name][counter], int)
        from repro.obs import validate_report

        validate_report(res.report)


class TestConfigAndLint:
    def test_codegen_requires_fastpath(self):
        with pytest.raises(ValueError, match="fastpath"):
            EngineConfig(fastpath=False, codegen=True)

    def test_b408_registered_and_fires(self, monkeypatch):
        assert "B408" in RULE_REGISTRY
        g = _random_graph(20, 0.3, seed=17)
        plan = cached_plan(g, QUERIES["q5"])
        cfg = EngineConfig(fastpath=True)
        quiet = lint_budget(plan, cfg, g)
        assert "B408" not in [d.rule for d in quiet.diagnostics]
        import repro.codegen.emit as emit

        monkeypatch.setattr(emit, "SOURCE_BUDGET_BYTES", 16)
        noisy = lint_budget(plan, cfg, g)
        assert "B408" in [d.rule for d in noisy.diagnostics]

    @pytest.mark.parametrize("raw,expect", [
        ("1", True), ("true", True), ("ON", True),
        ("0", False), ("no", False), ("", None), (None, None),
    ])
    def test_repro_codegen_env_resolution(self, monkeypatch, raw, expect):
        if raw is None:
            monkeypatch.delenv("REPRO_CODEGEN", raising=False)
        else:
            monkeypatch.setenv("REPRO_CODEGEN", raw)
        cfg = EngineConfig(fastpath=True, codegen=True)
        off = EngineConfig(fastpath=True, codegen=False)
        if expect is None:  # defer to the config
            assert resolve_codegen(cfg) is True
            assert resolve_codegen(off) is False
        else:
            assert resolve_codegen(cfg) is expect
            assert resolve_codegen(off) is expect

    def test_repro_codegen_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODEGEN", "maybe")
        with pytest.raises(ValueError, match="REPRO_CODEGEN"):
            resolve_codegen(EngineConfig(fastpath=True))

    def test_env_override_flips_backend(self, monkeypatch):
        # REPRO_CODEGEN=1 turns the compiled tier on without touching
        # call sites — and the results stay identical by contract
        g = _random_graph(22, 0.3, seed=19)
        q = QUERIES["q3"]
        plain = STMatchEngine(g, EngineConfig(fastpath=True)).run(q)
        monkeypatch.setenv("REPRO_CODEGEN", "1")
        forced = STMatchEngine(g, EngineConfig(fastpath=True)).run(q)
        assert _fingerprint(plain) == _fingerprint(forced)
