"""Unit tests for the kernel driver and the two-level work stealing."""

import numpy as np
import pytest

from repro import EngineConfig, STMatchEngine, get_query
from repro.baselines import count_matches_recursive
from repro.core.kernel import ChunkIterator
from repro.core.stealing import GlobalStealBoard, PendingWork
from repro.core.stack import StolenWork
from repro.graph import powerlaw_cluster, random_regular_ish
from repro.virtgpu.device import DeviceConfig


class TestChunkIterator:
    def test_chunks_cover_range(self):
        it = ChunkIterator(total=10, chunk_size=3)
        chunks = []
        while (c := it.next_chunk()) is not None:
            chunks.append(c)
        assert chunks == [(0, 3), (3, 6), (6, 9), (9, 10)]
        assert it.exhausted

    def test_start_offset(self):
        it = ChunkIterator(total=10, chunk_size=4, start=8)
        assert it.next_chunk() == (8, 10)
        assert it.next_chunk() is None

    def test_empty_range(self):
        it = ChunkIterator(total=0, chunk_size=4)
        assert it.next_chunk() is None


class TestGlobalStealBoard:
    def board(self):
        return GlobalStealBoard(num_blocks=3, warps_per_block=2)

    def test_idle_tracking(self):
        b = self.board()
        b.mark_idle(0, 0)
        assert not b.block_fully_idle(0)
        b.mark_idle(0, 1)
        assert b.block_fully_idle(0)
        b.clear_idle(0, 0)
        assert not b.block_fully_idle(0)

    def test_find_idle_block_excludes_self(self):
        b = self.board()
        b.mark_idle(1, 0)
        b.mark_idle(1, 1)
        assert b.find_idle_block(exclude_block=1) is None
        assert b.find_idle_block(exclude_block=0) == 1

    def test_find_idle_block_requires_empty_slot(self):
        b = self.board()
        b.mark_idle(2, 0)
        b.mark_idle(2, 1)
        b.deposit(2, StolenWork(frames=[], copied_elems=0), 0.0, 0)
        assert b.find_idle_block(exclude_block=0) is None

    def test_double_deposit_rejected(self):
        b = self.board()
        b.deposit(0, StolenWork(frames=[], copied_elems=0), 0.0, 0)
        with pytest.raises(ValueError):
            b.deposit(0, StolenWork(frames=[], copied_elems=0), 0.0, 1)

    def test_take_clears_slot(self):
        b = self.board()
        b.deposit(0, StolenWork(frames=[], copied_elems=3), 5.0, 7)
        pw = b.take(0)
        assert isinstance(pw, PendingWork)
        assert pw.pusher_warp == 7
        assert b.take(0) is None
        assert not b.has_pending


class TestStealingBehavior:
    """Behavioral checks: stealing must help where the paper says it does."""

    @pytest.fixture(scope="class")
    def skewed(self):
        # heavy-tailed graph: the load-imbalance case work stealing targets
        return powerlaw_cluster(150, m=4, p_triangle=0.6, seed=3)

    @pytest.fixture(scope="class")
    def regular(self):
        # near-regular graph: no skew, stealing should be ~neutral; large
        # enough that fixed launch/steal overheads do not dominate
        return random_regular_ish(400, 8, seed=3)

    def test_local_steal_speeds_up_skewed(self, skewed):
        q = get_query("q7")
        t_naive = STMatchEngine(skewed, EngineConfig.naive()).run(q)
        t_local = STMatchEngine(skewed, EngineConfig.localsteal()).run(q)
        assert t_local.matches == t_naive.matches
        assert t_local.sim_ms < t_naive.sim_ms
        assert t_local.num_local_steals > 0

    def test_global_steal_adds_on_top(self, skewed):
        q = get_query("q7")
        t_local = STMatchEngine(skewed, EngineConfig.localsteal()).run(q)
        t_lg = STMatchEngine(skewed, EngineConfig.local_global_steal()).run(q)
        assert t_lg.matches == t_local.matches
        assert t_lg.num_global_steals > 0
        # paper: global stealing helps or is ~neutral (small overhead)
        assert t_lg.sim_ms <= t_local.sim_ms * 1.25

    def test_occupancy_improves_with_stealing(self, skewed):
        q = get_query("q7")
        occ_naive = STMatchEngine(skewed, EngineConfig.naive()).run(q).occupancy
        occ_lg = STMatchEngine(skewed, EngineConfig.local_global_steal()).run(q).occupancy
        assert occ_lg > occ_naive

    def test_stealing_neutral_on_regular_graph(self, regular):
        q = get_query("q7")
        t_naive = STMatchEngine(regular, EngineConfig.naive()).run(q)
        t_lg = STMatchEngine(regular, EngineConfig.local_global_steal()).run(q)
        assert t_lg.matches == t_naive.matches
        # no skew: stealing may still trim the tail but must not hurt much
        assert t_lg.sim_ms <= t_naive.sim_ms * 1.3

    def test_steal_counts_zero_when_disabled(self, skewed):
        res = STMatchEngine(skewed, EngineConfig.naive()).run(get_query("q5"))
        assert res.num_local_steals == 0
        assert res.num_global_steals == 0

    def test_localsteal_only_never_global(self, skewed):
        res = STMatchEngine(skewed, EngineConfig.localsteal()).run(get_query("q5"))
        assert res.num_global_steals == 0


class TestUnrolling:
    @pytest.fixture(scope="class")
    def graph(self):
        return powerlaw_cluster(120, m=4, p_triangle=0.5, seed=8)

    def test_utilization_monotone_in_unroll(self, graph):
        """Fig. 13: larger unroll ⇒ higher intra-warp utilization."""
        q = get_query("q7")
        utils = []
        for u in (1, 2, 4, 8):
            cfg = EngineConfig(unroll=u)
            utils.append(STMatchEngine(graph, cfg).run(q).thread_utilization)
        assert all(b >= a for a, b in zip(utils, utils[1:])), utils

    def test_unroll_reduces_rounds(self, graph):
        q = get_query("q7")
        r1 = STMatchEngine(graph, EngineConfig(unroll=1)).run(q)
        r8 = STMatchEngine(graph, EngineConfig(unroll=8)).run(q)
        assert r8.counters.rounds < r1.counters.rounds
        assert r8.matches == r1.matches


class TestKernelAccounting:
    def test_single_kernel_launch_charged(self):
        g = powerlaw_cluster(80, m=3, seed=1)
        res = STMatchEngine(g).run(get_query("q5"))
        # every warp pays exactly one launch; idle+busy >= launch cycles
        agg = res.counters
        cfg = EngineConfig()
        n_warps = cfg.device.num_warps
        assert agg.idle_cycles >= cfg.device.cost.kernel_launch * n_warps

    def test_makespan_at_least_launch(self):
        g = powerlaw_cluster(80, m=3, seed=1)
        res = STMatchEngine(g).run(get_query("q5"))
        assert res.cycles >= EngineConfig().device.cost.kernel_launch

    def test_tree_nodes_counted(self):
        g = powerlaw_cluster(80, m=3, seed=1)
        res = STMatchEngine(g).run(get_query("q5"))
        assert res.counters.tree_nodes > 0
        assert res.counters.matches == res.matches
