"""Tests for stack checkpointing and resume (repro.core.checkpoint).

The acceptance bar: a checkpointed fault-free run is cycle-identical
to an uncheckpointed one (snapshots are modeled as off-critical-path
DMA), and a kill + resume round trip reproduces the exact fault-free
matches at (approximately) the fault-free makespan.
"""

import pytest

from repro import EngineConfig, STMatchEngine, get_query
from repro.core.checkpoint import Checkpointer, KernelSnapshot
from repro.core.counters import RunStatus
from repro.faults import FaultInjector
from repro.graph import powerlaw_cluster
from repro.virtgpu.device import VirtualDevice


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster(150, m=4, p_triangle=0.6, seed=9)


@pytest.fixture(scope="module")
def baseline(graph):
    return STMatchEngine(graph, EngineConfig()).run(get_query("q7"))


class TestCheckpointerConfig:
    def test_interval_validated(self):
        with pytest.raises(ValueError):
            Checkpointer(0)
        with pytest.raises(ValueError):
            EngineConfig(checkpoint_interval=0)
        assert EngineConfig(checkpoint_interval=4).checkpoint_interval == 4

    def test_snapshots_every_interval(self, graph):
        cfg = EngineConfig(checkpoint_interval=1)
        dev = VirtualDevice()
        # keep a handle on the state via on_match side channel-free run:
        # run through the engine and inspect via a fresh kernel instead
        from repro.core.candidates import CandidateComputer
        from repro.core.kernel import run_kernel

        eng = STMatchEngine(graph, cfg)
        plan = eng.plan(get_query("q7"))
        eng._allocate_fixed_memory(dev, plan, CandidateComputer(graph, plan, cfg))
        state = run_kernel(plan, cfg, CandidateComputer(graph, plan, cfg), dev,
                           checkpoint_interval=1)
        assert state.checkpointer is not None
        assert state.checkpointer.num_taken >= state.chunks_served - 1
        assert state.checkpointer.last is not None


class TestCycleIdentity:
    def test_checkpointing_is_free_in_simulated_cycles(self, graph, baseline):
        cfg = EngineConfig(checkpoint_interval=1)
        res = STMatchEngine(graph, cfg).run(get_query("q7"))
        assert res.matches == baseline.matches
        assert res.cycles == baseline.cycles  # exact, not approx
        assert res.sim_ms == baseline.sim_ms


class TestSnapshotWireFormat:
    def _mid_run_snapshot(self, graph) -> KernelSnapshot:
        cfg = EngineConfig(checkpoint_interval=1)
        dev = VirtualDevice()
        dev.attach_injector(FaultInjector(0, fail_at=50_000.0))
        res = STMatchEngine(graph, cfg).run(get_query("q7"), device=dev)
        assert res.status == RunStatus.FAILED
        assert res.checkpoint is not None
        return res.checkpoint

    def test_roundtrip_bytes(self, graph):
        snap = self._mid_run_snapshot(graph)
        wire = snap.to_bytes()
        back = KernelSnapshot.from_bytes(wire)
        assert back.chunk_pos == snap.chunk_pos
        assert back.chunks_served == snap.chunks_served
        assert back.matches == snap.matches
        assert back.num_warps == snap.num_warps
        assert back.warp_clocks == snap.warp_clocks
        for a, b in zip(snap.task_frames, back.task_frames):
            assert len(a) == len(b)
            for fa, fb in zip(a, b):
                assert fa.level == fb.level and fa.iter == fb.iter

    def test_from_bytes_rejects_other_payloads(self):
        import pickle

        with pytest.raises(TypeError):
            KernelSnapshot.from_bytes(pickle.dumps({"not": "a snapshot"}))


class TestResume:
    def _kill_and_resume(self, graph, cfg, query, fail_at=50_000.0):
        dev = VirtualDevice()
        dev.attach_injector(FaultInjector(0, fail_at=fail_at))
        eng = STMatchEngine(graph, cfg)
        dead = eng.run(query, device=dev)
        assert dead.status == RunStatus.FAILED and dead.matches == 0
        assert dead.checkpoint is not None, "fault struck before 1st checkpoint"
        resumed = eng.run(query, device=VirtualDevice(),
                          resume_from=dead.checkpoint)
        return dead, resumed

    def test_resume_reproduces_exact_matches(self, graph, baseline):
        cfg = EngineConfig(checkpoint_interval=1)
        _, resumed = self._kill_and_resume(graph, cfg, get_query("q7"))
        assert resumed.status == RunStatus.OK
        assert resumed.matches == baseline.matches

    def test_resume_makespan_bounded(self, graph, baseline):
        # restored warp clocks mean the resumed run finishes at (almost)
        # the fault-free makespan: at most one checkpoint interval of
        # root-chunk work is re-executed
        cfg = EngineConfig(checkpoint_interval=1)
        _, resumed = self._kill_and_resume(graph, cfg, get_query("q7"))
        interval_slack = 0.10 * baseline.cycles + 10_000.0
        assert resumed.cycles <= baseline.cycles + interval_slack

    def test_one_snapshot_seeds_many_resumes(self, graph, baseline):
        cfg = EngineConfig(checkpoint_interval=1)
        dead, first = self._kill_and_resume(graph, cfg, get_query("q7"))
        # restore() re-clones frames: the same snapshot must survive reuse
        second = STMatchEngine(graph, cfg).run(
            get_query("q7"), device=VirtualDevice(),
            resume_from=dead.checkpoint)
        assert first.matches == second.matches == baseline.matches

    def test_resume_with_sanitizer(self, graph):
        # X505 conservation must hold across the checkpoint boundary
        # (seed_outstanding adopts the restored stacks' roots)
        cfg = EngineConfig(checkpoint_interval=1, sanitize=True, fastpath=False)
        base = STMatchEngine(graph, cfg.with_(checkpoint_interval=None)) \
            .run(get_query("q7"))
        _, resumed = self._kill_and_resume(graph, cfg, get_query("q7"))
        assert resumed.matches == base.matches

    def test_resume_needs_matching_device_shape(self, graph):
        from repro.virtgpu.device import DeviceConfig

        cfg = EngineConfig(checkpoint_interval=1)
        dev = VirtualDevice()
        dev.attach_injector(FaultInjector(0, fail_at=50_000.0))
        eng = STMatchEngine(graph, cfg)
        dead = eng.run(get_query("q7"), device=dev)
        small = VirtualDevice(DeviceConfig(num_blocks=2, warps_per_block=2))
        small_eng = STMatchEngine(
            graph, cfg.with_(device=DeviceConfig(num_blocks=2, warps_per_block=2)))
        with pytest.raises(ValueError, match="identically shaped"):
            small_eng.run(get_query("q7"), device=small,
                          resume_from=dead.checkpoint)

    def test_no_checkpoint_means_full_restart_signal(self, graph):
        # interval unset: a killed launch carries no checkpoint
        dev = VirtualDevice()
        dev.attach_injector(FaultInjector(0, fail_at=50_000.0))
        res = STMatchEngine(graph).run(get_query("q7"), device=dev)
        assert res.status == RunStatus.FAILED
        assert res.checkpoint is None
        assert "full restart" in res.detail
