"""Unit tests for the virtual device, memory spaces, warp state and
the discrete-event scheduler."""

import pytest

from repro.virtgpu import (
    DeviceConfig,
    DeviceOOMError,
    EventScheduler,
    GlobalMemory,
    GpuCostModel,
    MemorySpace,
    SharedMemory,
    StepResult,
    VirtualDevice,
    Warp,
)


class TestMemorySpace:
    def test_alloc_free(self):
        m = MemorySpace("m", capacity=100)
        m.alloc(60, tag="a")
        assert m.in_use == 60
        m.free(20, tag="a")
        assert m.in_use == 40
        assert m.usage("a") == 40

    def test_oom_raised(self):
        m = MemorySpace("m", capacity=100)
        m.alloc(80)
        with pytest.raises(DeviceOOMError) as ei:
            m.alloc(21)
        assert ei.value.capacity == 100
        assert ei.value.in_use == 80

    def test_high_water(self):
        m = MemorySpace("m", capacity=100)
        m.alloc(70, tag="x")
        m.free_tag("x")
        m.alloc(10)
        assert m.high_water == 70
        assert m.in_use == 10

    def test_over_free_rejected(self):
        m = MemorySpace("m", capacity=100)
        m.alloc(10, tag="t")
        with pytest.raises(ValueError):
            m.free(20, tag="t")

    def test_free_tag_returns_bytes(self):
        m = MemorySpace("m", capacity=100)
        m.alloc(30, tag="t")
        assert m.free_tag("t") == 30
        assert m.free_tag("t") == 0

    def test_negative_alloc_rejected(self):
        with pytest.raises(ValueError):
            MemorySpace("m", 10).alloc(-1)

    def test_reset(self):
        m = MemorySpace("m", 10)
        m.alloc(5)
        m.reset()
        assert m.in_use == 0 and m.high_water == 0

    def test_utilization(self):
        m = MemorySpace("m", 100)
        m.alloc(25)
        assert m.utilization == 0.25


class TestWarp:
    def test_charge_advances_clock(self):
        w = Warp(warp_id=0, block_id=0)
        w.charge(100)
        assert w.clock == 100
        assert w.counters.busy_cycles == 100

    def test_idle_charge(self):
        w = Warp(warp_id=0, block_id=0)
        w.charge(50, busy=False)
        assert w.counters.idle_cycles == 50

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            Warp(warp_id=0, block_id=0).charge(-1)

    def test_sync_to_accrues_idle(self):
        w = Warp(warp_id=0, block_id=0)
        w.charge(10)
        w.sync_to(100)
        assert w.clock == 100
        assert w.counters.idle_cycles == 90
        w.sync_to(50)  # past: no-op
        assert w.clock == 100

    def test_set_op_counters(self):
        w = Warp(warp_id=0, block_id=0)
        w.charge_set_op(total_elems=40, operand_size=16)
        assert w.counters.set_ops == 1
        assert w.counters.rounds == 2
        assert w.counters.busy_lanes == 40
        assert w.counters.thread_utilization == 40 / 64


class TestCostModel:
    def test_rounds(self):
        c = GpuCostModel()
        assert c.rounds(0) == 1
        assert c.rounds(32) == 1
        assert c.rounds(33) == 2

    def test_set_op_monotone_in_size(self):
        c = GpuCostModel()
        assert c.set_op_cycles(64, 16) > c.set_op_cycles(8, 16)
        assert c.set_op_cycles(8, 1024) > c.set_op_cycles(8, 4)

    def test_shared_cheaper_than_global(self):
        c = GpuCostModel()
        assert c.copy_cycles(100, in_global=False) < c.copy_cycles(100, in_global=True)
        assert c.steal_cycles(100, local=True) < c.steal_cycles(100, local=False)

    def test_to_ms(self):
        c = GpuCostModel(clock_ghz=1.0)
        assert c.to_ms(1e9) == pytest.approx(1000.0)


class TestDevice:
    def test_structure(self):
        d = VirtualDevice(DeviceConfig(num_blocks=3, warps_per_block=4))
        assert d.num_warps == 12
        assert len(d.warps_in_block(1)) == 4
        assert all(w.block_id == 1 for w in d.warps_in_block(1))

    def test_makespan_and_occupancy(self):
        d = VirtualDevice(DeviceConfig(num_blocks=1, warps_per_block=2))
        d.warps[0].charge(100)
        d.warps[1].charge(25)
        d.warps[1].sync_to(100)
        assert d.makespan_cycles() == 100
        assert d.occupancy() == pytest.approx(125 / 200)

    def test_reset(self):
        d = VirtualDevice(DeviceConfig(num_blocks=1, warps_per_block=1))
        d.warps[0].charge(10)
        d.global_mem.alloc(5)
        d.reset()
        assert d.makespan_cycles() == 0
        assert d.global_mem.in_use == 0

    def test_shared_memory_per_block(self):
        d = VirtualDevice(DeviceConfig(num_blocks=2, warps_per_block=1))
        assert len(d.shared_mem) == 2
        assert isinstance(d.shared_mem[0], SharedMemory)

    def test_default_global_memory_is_scaled(self):
        assert isinstance(VirtualDevice().global_mem, GlobalMemory)


class TestEventScheduler:
    def test_min_clock_order(self):
        class E:
            def __init__(self, name, cost):
                self.name, self.cost, self.clock, self.steps = name, cost, 0.0, 0

        trace = []

        def step(e):
            trace.append(e.name)
            e.clock += e.cost
            e.steps += 1
            return StepResult.DONE if e.steps >= 2 else StepResult.RUNNING

        a, b = E("a", 10), E("b", 3)
        sched = EventScheduler([a, b], clock_of=lambda e: e.clock, step=step)
        sched.run()
        # b (cheap) steps twice before a's second step
        assert trace == ["a", "b", "b", "a"] or trace == ["b", "a", "b", "a"] or trace[0] in "ab"
        assert sched.all_done

    def test_blocked_entities_leave_queue(self):
        class E:
            clock = 0.0

        e = E()
        sched = EventScheduler([e], clock_of=lambda x: x.clock, step=lambda x: StepResult.BLOCKED)
        sched.run()
        assert e in sched.blocked
        assert not sched.all_done

    def test_wake_reinserts(self):
        class E:
            def __init__(self):
                self.clock = 0.0
                self.calls = 0

        e = E()

        def step(x):
            x.calls += 1
            return StepResult.BLOCKED if x.calls == 1 else StepResult.DONE

        sched = EventScheduler([e], clock_of=lambda x: x.clock, step=step)
        sched.run()
        assert e.calls == 1
        sched.wake(e)
        sched.run()
        assert e.calls == 2 and sched.all_done

    def test_max_steps(self):
        class E:
            clock = 0.0

        def step(x):
            x.clock += 1
            return StepResult.RUNNING

        e = E()
        sched = EventScheduler([e], clock_of=lambda x: x.clock, step=step)
        assert sched.run(max_steps=5) == 5
