"""MatchService request lifecycle (repro.serve.service).

Serial-backend tests of the tentpole contracts: explicit admission
control (never a silent drop), per-tenant limits, deadline handling,
idempotent retries (exactly-once counting, X511), the degradation
ladder, budget truncation marked non-exact, and versioned graph
hosting.  Pool/chaos behavior lives in test_serve_chaos.py.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis.races import ProtocolLog
from repro.analysis.races.hb import check_protocol
from repro.core.config import EngineConfig
from repro.core.engine import STMatchEngine
from repro.pattern import QUERIES
from repro.serve import (
    MatchRequest,
    MatchResponse,
    MatchService,
    ResponseStatus,
    RetryPolicy,
    TenantPolicy,
)

from tests import oracle


@pytest.fixture(scope="module")
def graphs():
    return oracle.corpus_graphs()


@pytest.fixture(scope="module")
def golden(graphs):
    out = {}
    for name in ("sparse", "dense"):
        eng = STMatchEngine(graphs[name], EngineConfig())
        for qn in ("q1", "q2"):
            out[(name, qn)] = eng.run(QUERIES[qn]).matches
    return out


def make_service(graphs, **kwargs):
    cfg = kwargs.pop("config", EngineConfig())
    return MatchService({"sparse": graphs["sparse"]}, cfg, **kwargs)


class TestContractValidation:
    def test_request_rejects_bad_deadline_and_budget(self):
        q = QUERIES["q1"]
        with pytest.raises(ValueError):
            MatchRequest(graph="g", query=q, deadline_s=0.0)
        with pytest.raises(ValueError):
            MatchRequest(graph="g", query=q, budget=0)
        with pytest.raises(ValueError):
            MatchRequest(graph="", query=q)

    def test_response_rejects_partial_count_on_non_ok(self):
        with pytest.raises(ValueError):
            MatchResponse(request_id="r1", tenant="t", graph="g",
                          graph_version=1,
                          status=ResponseStatus.REJECTED_OVERLOAD,
                          matches=5, detail="shed")

    def test_response_requires_detail_when_degraded_or_failed(self):
        with pytest.raises(ValueError):
            MatchResponse(request_id="r1", tenant="t", graph="g",
                          graph_version=1, status=ResponseStatus.OK,
                          degraded=True, detail="")
        with pytest.raises(ValueError):
            MatchResponse(request_id="r1", tenant="t", graph="g",
                          graph_version=1, status=ResponseStatus.FAILED,
                          detail="")

    def test_only_ok_can_be_exact(self):
        with pytest.raises(ValueError):
            MatchResponse(request_id="r1", tenant="t", graph="g",
                          graph_version=1,
                          status=ResponseStatus.DEADLINE_EXCEEDED,
                          exact=True, detail="late")

    def test_retry_policy_backoff_is_capped_exponential(self):
        rp = RetryPolicy(base_backoff_s=0.1, max_backoff_s=0.5, jitter=False)
        assert rp.backoff_s(0) == pytest.approx(0.1)
        assert rp.backoff_s(1) == pytest.approx(0.2)
        assert rp.backoff_s(10) == pytest.approx(0.5)
        jittered = RetryPolicy(base_backoff_s=0.1, max_backoff_s=0.5)
        assert jittered.backoff_s(0, jitter_u=0.0) == pytest.approx(0.05)
        assert jittered.backoff_s(0, jitter_u=1.0) == pytest.approx(0.1)


class TestServeBasics:
    def test_serves_exact_count(self, graphs, golden):
        svc = make_service(graphs)
        r = svc.match(MatchRequest(graph="sparse", query=QUERIES["q1"]))
        assert r.status == ResponseStatus.OK
        assert r.countable
        assert r.matches == golden[("sparse", "q1")]
        assert r.graph_version == 1
        assert r.served_from == "engine"

    def test_unknown_graph_raises(self, graphs):
        svc = make_service(graphs)
        with pytest.raises(KeyError):
            svc.match(MatchRequest(graph="nope", query=QUERIES["q1"]))

    def test_second_request_served_from_cache(self, graphs, golden):
        svc = make_service(graphs)
        a = svc.match(MatchRequest(graph="sparse", query=QUERIES["q1"]))
        b = svc.match(MatchRequest(graph="sparse", query=QUERIES["q1"]))
        assert a.served_from == "engine" and b.served_from == "cache"
        assert b.matches == a.matches and b.countable

    def test_budget_truncation_is_ok_but_not_exact(self, graphs, golden):
        svc = make_service(graphs)
        r = svc.match(MatchRequest(graph="sparse", query=QUERIES["q1"],
                                   budget=10))
        assert r.status == ResponseStatus.OK
        assert not r.exact and not r.countable
        # the engine stops at batch granularity, so the truncated count
        # may overshoot the budget slightly but never reaches the total
        assert r.matches < golden[("sparse", "q1")]
        assert "budget" in r.detail
        # a truncated count must never be cached as exact
        full = svc.match(MatchRequest(graph="sparse", query=QUERIES["q1"]))
        assert full.countable and full.matches == golden[("sparse", "q1")]

    def test_stats_shape(self, graphs):
        svc = make_service(graphs)
        svc.match(MatchRequest(graph="sparse", query=QUERIES["q1"]))
        s = svc.stats()
        assert s["requests"]["total"] == 1 and s["requests"]["ok"] == 1
        assert "results" in s["caches"] and "engine:sparse" in s["caches"]
        assert set(s["breaker"]) >= {"state", "transitions"}
        assert "live_pools" in s["pool"]


class TestAdmission:
    def test_overload_is_an_explicit_rejection(self, graphs):
        # deterministic: exhaust the admission semaphore (the queue is
        # full), then require an explicit REJECTED_OVERLOAD
        svc = make_service(graphs, queue_depth=1)
        assert svc._slots.acquire(blocking=False)  # noqa: SLF001
        try:
            r = svc.match(MatchRequest(graph="sparse", query=QUERIES["q1"]))
        finally:
            svc._slots.release()  # noqa: SLF001
        assert r.status == ResponseStatus.REJECTED_OVERLOAD
        assert r.shed and r.matches == 0 and r.detail

    def test_tenant_concurrency_limit(self, graphs):
        svc = make_service(
            graphs, tenants={"t": TenantPolicy(max_concurrency=1)})
        # simulate one in-flight request of the tenant
        with svc._state_lock:  # noqa: SLF001 - deterministic white-box
            svc._tenant_inflight["t"] = 1
        r = svc.match(MatchRequest(graph="sparse", query=QUERIES["q1"],
                                   tenant="t"))
        assert r.status == ResponseStatus.REJECTED_TENANT
        assert "concurrency" in r.detail

    def test_tenant_cycle_quota_exhausts(self, graphs):
        svc = make_service(graphs,
                           tenants={"t": TenantPolicy(cycle_quota=1.0)})
        a = svc.match(MatchRequest(graph="sparse", query=QUERIES["q1"],
                                   tenant="t"))
        assert a.status == ResponseStatus.OK
        b = svc.match(MatchRequest(graph="sparse", query=QUERIES["q2"],
                                   tenant="t"))
        assert b.status == ResponseStatus.REJECTED_TENANT
        assert "quota" in b.detail
        assert svc.tenant_usage("t")["cycles"] > 0

    def test_tenant_budget_clamps_requests(self, graphs, golden):
        svc = make_service(graphs, tenants={"t": TenantPolicy(budget=10)})
        r = svc.match(MatchRequest(graph="sparse", query=QUERIES["q1"],
                                   tenant="t"))
        assert r.status == ResponseStatus.OK and not r.exact
        assert r.run_status == "budget"
        assert r.matches < golden[("sparse", "q1")]

    def test_expired_deadline_is_explicit(self, graphs):
        svc = make_service(graphs)
        r = svc.match(MatchRequest(graph="sparse", query=QUERIES["q1"],
                                   deadline_s=1e-9))
        assert r.status == ResponseStatus.DEADLINE_EXCEEDED
        assert r.detail and r.matches == 0


class TestIdempotency:
    def test_replay_serves_without_reexecution(self, graphs, golden):
        log = ProtocolLog()
        svc = make_service(graphs, protocol_log=log)
        a = svc.match(MatchRequest(graph="sparse", query=QUERIES["q1"],
                                   idempotency_key="k"))
        b = svc.match(MatchRequest(graph="sparse", query=QUERIES["q1"],
                                   idempotency_key="k"))
        assert a.served_from == "engine"
        assert b.served_from == "idempotency"
        assert b.matches == a.matches == golden[("sparse", "q1")]
        assert b.request_id != a.request_id
        kinds = [e.kind for e in log.events]
        assert kinds.count("request_commit") == 1
        assert kinds.count("request_replay") == 1
        assert not check_protocol(log.events).diagnostics

    def test_concurrent_same_key_executes_once(self, graphs, golden):
        log = ProtocolLog()
        svc = make_service(graphs, protocol_log=log)
        results = []
        lock = threading.Lock()

        def worker():
            r = svc.match(MatchRequest(graph="sparse", query=QUERIES["q1"],
                                       idempotency_key="dup"))
            with lock:
                results.append(r)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 4
        assert all(r.matches == golden[("sparse", "q1")] for r in results)
        engine_runs = [r for r in results if r.served_from == "engine"]
        assert len(engine_runs) == 1  # exactly-once execution
        assert not check_protocol(log.events).diagnostics

    def test_window_eviction_forgets_the_key(self, graphs):
        log = ProtocolLog()
        svc = make_service(graphs, protocol_log=log, idempotency_window=1)
        svc.match(MatchRequest(graph="sparse", query=QUERIES["q1"],
                               idempotency_key="k1"))
        svc.match(MatchRequest(graph="sparse", query=QUERIES["q2"],
                               idempotency_key="k2"))  # evicts k1
        # k1 is a stranger again: re-executes (cache hit) without X506/X511
        r = svc.match(MatchRequest(graph="sparse", query=QUERIES["q1"],
                                   idempotency_key="k1"))
        assert r.status == ResponseStatus.OK
        kinds = [e.kind for e in log.events]
        assert "ledger_forget" in kinds
        assert not check_protocol(log.events).diagnostics


class TestDegradationLadder:
    def test_pressure_degrades_to_interpreted(self, graphs, golden):
        svc = make_service(graphs, pressure_threshold=0)
        r = svc.match(MatchRequest(graph="sparse", query=QUERIES["q1"]))
        assert r.status == ResponseStatus.OK
        assert r.degraded and r.degrade_level == 1
        assert "pressure" in r.detail
        # degraded, but the count is still exact — the ladder preserves
        # identity, it only changes the execution strategy
        assert r.countable and r.matches == golden[("sparse", "q1")]


class TestGraphHosting:
    def test_update_bumps_version_and_invalidates(self, graphs, golden):
        svc = make_service(graphs)
        a = svc.match(MatchRequest(graph="sparse", query=QUERIES["q1"]))
        assert svc.update_graph("sparse", graphs["dense"]) == 2
        b = svc.match(MatchRequest(graph="sparse", query=QUERIES["q1"]))
        assert a.graph_version == 1 and b.graph_version == 2
        assert b.served_from == "engine"  # the v1 entry must not serve
        assert a.matches == golden[("sparse", "q1")]
        assert b.matches == golden[("dense", "q1")]

    def test_update_unknown_graph_raises(self, graphs):
        svc = make_service(graphs)
        with pytest.raises(KeyError):
            svc.update_graph("nope", graphs["dense"])
