"""Resource linter: the budget math and the B-rule diagnostics.

The footprint formulas mirror the engine's own allocation in
``STMatchEngine._allocate_fixed_memory`` (Sec. VIII-A): shared memory
holds Csize/iter/uiter per warp plus the Fig. 9b arrays; global memory
holds the candidate stack ``C = NUM_SETS × UNROLL × slot × NUM_WARPS``.
"""

from __future__ import annotations

import pytest

from repro.analysis.budget import estimate_budget, lint_budget, max_fitting_unroll
from repro.core.config import EngineConfig
from repro.graph.generators import powerlaw_cluster
from repro.pattern.plan import build_plan
from repro.pattern.query import QueryGraph
from repro.virtgpu.device import DeviceConfig


@pytest.fixture(scope="module")
def c3_plan():
    return build_plan(QueryGraph.clique(3, name="clique3"))


def small_device(**kw) -> DeviceConfig:
    return DeviceConfig(**kw)


def test_estimate_matches_engine_accounting(c3_plan):
    cfg = EngineConfig()  # unroll=8, max_degree=4096, 8x8 device
    est = estimate_budget(c3_plan, cfg)
    n, k, dev = 3, 3, cfg.device
    control = n * cfg.unroll * 4 + k * 2 * 4
    assert est.control_bytes_per_warp == control
    assert est.encoding_bytes == (k + 1) * 4 + n * 4 * 4
    assert est.shared_bytes_per_block == control * dev.warps_per_block + est.encoding_bytes
    assert est.candidate_bytes_total == n * cfg.unroll * cfg.max_degree * 4 * dev.num_warps
    assert est.shared_bytes_per_block <= est.shared_capacity
    assert 0.0 < est.shared_utilization < 1.0


def test_graph_caps_slot_size_and_adds_csr_bytes(c3_plan):
    g = powerlaw_cluster(60, m=3, seed=1)
    cfg = EngineConfig()
    est = estimate_budget(c3_plan, cfg, g)
    assert est.slot_elems == min(cfg.max_degree, g.max_degree())
    assert est.graph_bytes >= int(g.indices.nbytes + g.indptr.nbytes)
    assert est.global_bytes_total == est.candidate_bytes_total + est.graph_bytes


def test_live_profile_counts_lifted_lifetimes():
    # vertex-induced q1 carries lifted sets that stay live across levels
    from repro.pattern.motifs import QUERIES

    plan = build_plan(QUERIES["q1"], vertex_induced=True)
    est = estimate_budget(plan, EngineConfig())
    assert len(est.live_per_level) == plan.size
    assert est.peak_live_sets == max(est.live_per_level)
    assert est.peak_live_sets >= 2
    assert est.peak_live_bytes_per_warp == est.peak_live_sets * est.unroll * est.slot_elems * 4


# -- B-rules ------------------------------------------------------------------


def test_shared_overflow_b401(c3_plan):
    cfg = EngineConfig(device=small_device(shared_mem_per_block=512))
    rep = lint_budget(c3_plan, cfg)
    (d,) = rep.by_rule("B401")
    assert rep.has_errors
    assert "shared memory" in d.message
    # hint proposes the largest unroll that fits: (12u + 24)*8 + 64 <= 512 -> 2
    assert max_fitting_unroll(c3_plan, cfg) == 2
    assert "unroll from 8 to 2" in (d.hint or "")


def test_shared_pressure_b402(c3_plan):
    cfg = EngineConfig(device=small_device(shared_mem_per_block=1500))
    rep = lint_budget(c3_plan, cfg)
    assert not rep.has_errors
    assert rep.by_rule("B402")
    assert rep.by_rule("B402")[0].severity.name == "WARNING"


def test_global_overflow_b403(c3_plan):
    cfg = EngineConfig(device=small_device(global_mem_bytes=1024 * 1024))
    rep = lint_budget(c3_plan, cfg)
    (d,) = rep.by_rule("B403")
    assert "OOM" in d.message


def test_degree_spill_b404(c3_plan):
    g = powerlaw_cluster(60, m=3, seed=1)
    cfg = EngineConfig(max_degree=2)
    rep = lint_budget(c3_plan, cfg, g)
    (d,) = rep.by_rule("B404")
    assert str(g.max_degree()) in d.message


def test_peak_pressure_note_always_present(c3_plan):
    rep = lint_budget(c3_plan, EngineConfig())
    assert rep.by_rule("B405")
    assert not rep.has_errors


def test_default_config_fits_all_builtin_plans():
    from repro.pattern.motifs import QUERIES

    cfg = EngineConfig()
    for name in ("q5", "q13", "q24"):
        rep = lint_budget(build_plan(QUERIES[name]), cfg, subject=name)
        assert not rep.has_errors, rep.render()


def test_max_fitting_unroll_zero_when_nothing_fits(c3_plan):
    cfg = EngineConfig(device=small_device(shared_mem_per_block=64))
    assert max_fitting_unroll(c3_plan, cfg) == 0


def test_max_fitting_unroll_full_when_roomy(c3_plan):
    cfg = EngineConfig()
    assert max_fitting_unroll(c3_plan, cfg) == cfg.unroll


def test_split_label_program_costs_more_shared_memory():
    import numpy as np

    from repro.codemotion.labeled import split_labeled_program
    from repro.pattern.motifs import QUERIES

    q = QUERIES["q13"]
    labels = np.asarray([i % 2 for i in range(q.size)], dtype=np.int64)
    lq = QueryGraph(adj=q.adj, labels=labels, name="q13L2")
    plan = build_plan(lq)
    split = split_labeled_program(plan.program, plan.query)
    cfg = EngineConfig()
    merged_est = estimate_budget(plan, cfg)
    split_est = estimate_budget(split, cfg)
    assert split_est.num_sets > merged_est.num_sets
    assert split_est.shared_bytes_per_block > merged_est.shared_bytes_per_block
    # the B401 hint on an overflowing split program proposes label merging
    tight = EngineConfig(
        device=small_device(shared_mem_per_block=merged_est.shared_bytes_per_block)
    )
    rep = lint_budget(split, tight)
    (d,) = rep.by_rule("B401")
    assert "Fig. 10b" in (d.hint or "")


def test_bitmap_hint_b406(c3_plan):
    """A hub at/above the bitmap threshold without a configured index
    draws the B406 perf warning; configuring the index silences it."""
    from repro.graph.csr import DEFAULT_BITMAP_THRESHOLD, CSRGraph

    hub_deg = DEFAULT_BITMAP_THRESHOLD
    star = CSRGraph.from_edges(
        hub_deg + 1, [(0, v) for v in range(1, hub_deg + 1)]
    )
    rep = lint_budget(c3_plan, EngineConfig(), star)
    (d,) = rep.by_rule("B406")
    assert d.severity.name == "WARNING"
    assert str(hub_deg) in d.message
    assert "bitmap_threshold" in (d.hint or "")
    # configured index -> no warning
    cfg = EngineConfig(bitmap_threshold=DEFAULT_BITMAP_THRESHOLD)
    assert not lint_budget(c3_plan, cfg, star).by_rule("B406")
    # low-degree graph -> no warning
    small = powerlaw_cluster(60, m=3, seed=1)
    assert not lint_budget(c3_plan, EngineConfig(), small).by_rule("B406")
