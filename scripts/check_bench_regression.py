#!/usr/bin/env python
"""Gate fast-path performance: compare BENCH_fastpath.json files.

Three modes:

* ``check_bench_regression.py CURRENT.json`` — validate a single bench
  file's invariants: every workload must report byte-identical matches
  and cycles between the two backends, and the geomean speedup must
  reach ``--min-speedup`` (default 3.0, the acceptance floor).

* ``check_bench_regression.py BASELINE.json CURRENT.json`` — the CI
  gate: additionally fail if any workload tracked by the baseline got
  more than ``--threshold`` (default 20%) slower on the fast path, or
  disappeared from the current file.

* ``check_bench_regression.py --profile BENCH_profile.json`` —
  validate a ``python -m repro.bench profile`` payload against the
  ``repro.obs`` schema, check the zero-overhead identity flags, and
  require each query's full-over-baseline speedup to reach
  ``--min-profile-speedup`` (default 1.0 — optimizations must never
  make a query slower than the naive rung).

* ``check_bench_regression.py --codegen BENCH_codegen.json`` —
  validate a ``python -m repro.bench codegen`` payload: every cell must
  report byte-identical matches and cycles between the interpreted fast
  path and the compiled tier, and the geomean speedup over the *dense*
  cells must reach ``--min-codegen-speedup`` (default 2.0, the
  acceptance floor — sparse stand-in rows are informational because the
  shared kernel loop bounds their ratio).

* ``check_bench_regression.py --serve BENCH_serve.json`` — validate a
  ``python -m repro.bench serve`` payload against the ``repro.obs``
  service schema and its robustness invariants: the terminal-status
  accounting adds up, every countable response matched its golden
  count (load *and* chaos phase), degraded/shed responses were
  explicitly marked, the chaos phase actually opened and re-closed the
  circuit breaker, and the load phase ran at least ``--min-clients``
  concurrent clients (default 4).  Absolute latency/throughput are
  recorded, never gated — they are machine-dependent.

* ``check_bench_regression.py --dynamic BENCH_dynamic.json`` —
  validate a ``python -m repro.bench dynamic`` payload: every cell must
  report ``base + delta.net == recount`` (the incremental counter
  agrees with a from-scratch count of the mutated graph) and the
  geomean speedup of delta exploration over full recounts on
  small-batch cells must reach ``--min-dynamic-speedup`` (default 3.0
  — delta anchoring is pointless if it does not beat recounting).

* ``check_bench_regression.py --scale BENCH_scale.json`` — validate
  a ``python -m repro.bench scale`` payload: the out-of-core RSS probe
  must report byte-identical matches and cycles between the
  materialized and memory-mapped backends AND a memmap peak-RSS delta
  at or below ``--max-rss-ratio`` (default 0.5) of the materialized
  delta; every range-partitioned point must count exactly the serial
  whole-graph matches; and the 4-shard speedup must reach
  ``--min-scale-speedup`` (default 2.0) scaled by
  ``min(4, cpu_count) / 4`` — the same honesty clause as the parallel
  gate, so a single-core recording host is not asked to fabricate
  parallelism.

* ``check_bench_regression.py --parallel BENCH_parallel.json`` —
  validate a ``python -m repro.bench parallel`` payload: every
  (workload, worker-count) point must report byte-identical matches
  and cycles between the serial and process backends, and the geomean
  speedup at 4 workers must reach ``--min-parallel-speedup`` (default
  2.5) *scaled by the parallelism the recording host could physically
  deliver* — ``min(4, cpu_count) / 4`` — so a payload generated on a
  core-constrained box is held to an honest floor (e.g. 1 usable CPU
  caps any 4-worker speedup near 1×; demanding 2.5× there would only
  reward fabricated numbers).  On a ≥ 4-core host the full floor
  applies.

Exit status 0 = pass, 1 = regression/violation, 2 = bad input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _import_obs():
    """Import ``repro.obs`` even when the package isn't installed."""
    try:
        from repro import obs
    except ImportError:
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
        from repro import obs
    return obs


def load(path: str) -> dict:
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    if "workloads" not in data:
        print(f"error: {path} has no 'workloads' key (not a fastpath bench file?)",
              file=sys.stderr)
        raise SystemExit(2)
    return data


def by_key(data: dict) -> dict[str, dict]:
    return {w["key"]: w for w in data["workloads"]}


def check_invariants(data: dict, min_speedup: float | None) -> list[str]:
    """Identity and speedup-floor violations inside one bench file."""
    problems = []
    for w in data["workloads"]:
        if not w.get("identical_matches", False):
            problems.append(f"{w['key']}: fastpath changed the match count")
        if not w.get("identical_cycles", False):
            problems.append(f"{w['key']}: fastpath changed the simulated cycles")
    if min_speedup is not None:
        gm = data.get("geomean_speedup")
        if gm is None or gm < min_speedup:
            problems.append(
                f"geomean speedup {gm} is below the {min_speedup}× floor"
            )
    return problems


def check_regressions(baseline: dict, current: dict, threshold: float) -> list[str]:
    """Per-workload fast-path wall-clock regressions beyond ``threshold``."""
    problems = []
    cur = by_key(current)
    for key, base_w in by_key(baseline).items():
        cur_w = cur.get(key)
        if cur_w is None:
            problems.append(f"{key}: tracked workload missing from current bench")
            continue
        base_s = base_w["wall_s_fastpath"]
        cur_s = cur_w["wall_s_fastpath"]
        if base_s > 0 and cur_s > base_s * (1.0 + threshold):
            problems.append(
                f"{key}: fastpath wall {cur_s:.3f}s is "
                f"{cur_s / base_s - 1.0:+.0%} vs baseline {base_s:.3f}s "
                f"(threshold {threshold:.0%})"
            )
    return problems


def check_profile(path: str, min_speedup: float) -> list[str]:
    """Validate a ``repro.bench profile`` payload (schema + invariants)."""
    obs = _import_obs()
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    try:
        obs.validate_profile(payload)
    except ValueError as e:
        print(f"error: {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    problems = []
    for qname, q in sorted(payload["queries"].items()):
        fp = q["fastpath"]
        if not fp.get("identical_matches", False):
            problems.append(f"{qname}: fastpath changed the match count")
        if not fp.get("identical_cycles", False):
            problems.append(f"{qname}: fastpath changed the simulated cycles")
        speedup = q["speedup_full_vs_baseline"]
        if speedup < min_speedup:
            problems.append(
                f"{qname}: full-config speedup {speedup:.2f}× is below the "
                f"{min_speedup}× floor (optimizations made it slower)"
            )
        for vname, row in q["variants"].items():
            if row["status"] not in ("ok", "budget"):
                problems.append(f"{qname}/{vname}: status {row['status']!r}")
    return problems


def check_codegen(path: str, min_speedup: float) -> list[str]:
    """Validate a ``repro.bench codegen`` payload (identity + dense floor)."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    if payload.get("experiment") != "codegen" or "workloads" not in payload:
        print(f"error: {path} is not a codegen bench payload", file=sys.stderr)
        raise SystemExit(2)
    problems = []
    dense = 0
    for w in payload["workloads"]:
        if not w.get("identical_matches", False):
            problems.append(f"{w['key']}: codegen changed the match count")
        if not w.get("identical_cycles", False):
            problems.append(f"{w['key']}: codegen changed the simulated cycles")
        dense += bool(w.get("dense"))
    if not dense:
        problems.append("payload has no dense cells — nothing feeds the gate")
    gm = payload.get("geomean_speedup_dense")
    if gm is None:
        problems.append("payload has no geomean_speedup_dense")
    elif gm < min_speedup:
        problems.append(
            f"dense geomean speedup {gm}× is below the {min_speedup}× floor"
        )
    return problems


def check_parallel(path: str, min_speedup: float) -> list[str]:
    """Validate a ``repro.bench parallel`` payload (identity + scaling)."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    if payload.get("experiment") != "parallel" or "workloads" not in payload:
        print(f"error: {path} is not a parallel bench payload", file=sys.stderr)
        raise SystemExit(2)
    problems = []
    for w in payload["workloads"]:
        for p in w.get("points", []):
            where = f"{w['key']}@{p['workers']}w"
            if not p.get("identical_matches", False):
                problems.append(f"{where}: process backend changed the match count")
            if not p.get("identical_cycles", False):
                problems.append(f"{where}: process backend changed the simulated cycles")
    cpus = int(payload.get("cpu_count") or 1)
    target_workers = 4
    # a k-worker pool cannot beat the cores it actually has: scale the
    # floor by the attainable parallelism of the recording host
    attainable = min(target_workers, max(1, cpus))
    required = min_speedup * attainable / target_workers
    gm = payload.get("geomean_speedup_at_4")
    if gm is None:
        problems.append("payload has no geomean_speedup_at_4 (no 4-worker points?)")
    elif gm < required:
        problems.append(
            f"geomean 4-worker speedup {gm}× is below the floor "
            f"{required:.2f}× ({min_speedup}× scaled by "
            f"min(4, {cpus} cpu(s))/4)"
        )
    return problems


def check_scale(path: str, max_rss_ratio: float,
                min_speedup: float) -> list[str]:
    """Validate a ``repro.bench scale`` payload (RSS + partitioning)."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    if payload.get("experiment") != "scale" or "rss" not in payload \
            or "partition" not in payload:
        print(f"error: {path} is not a scale bench payload", file=sys.stderr)
        raise SystemExit(2)
    problems = []
    rss = payload["rss"]
    if not rss.get("identical_matches", False):
        problems.append("rss probe: memmap backend changed the match count")
    if not rss.get("identical_cycles", False):
        problems.append("rss probe: memmap backend changed the simulated cycles")
    mat_delta = (rss.get("memory") or {}).get("rss_delta_kb")
    if not mat_delta or mat_delta <= 0:
        problems.append(
            "rss probe: materialized arm reports a zero/absent peak-RSS "
            "delta — the probe measured nothing (a broken measurement "
            "must not pass the ceiling vacuously)")
    ratio = rss.get("ratio")
    if ratio is None or ratio > max_rss_ratio:
        problems.append(
            f"rss probe: memmap peak-RSS delta is {ratio}x the "
            f"materialized delta, above the {max_rss_ratio}x ceiling — "
            "the out-of-core backend is not staying out of core")
    part = payload["partition"]
    if not part.get("identical_matches", False):
        problems.append(
            f"{part.get('key')}: a range-partitioned point diverged from "
            "the serial whole-graph count (double count or orphaned roots)")
    cpus = int(payload.get("cpu_count") or 1)
    target_shards = 4
    attainable = min(target_shards, max(1, cpus))
    required = min_speedup * attainable / target_shards
    sp = part.get("speedup_at_4")
    if sp is None:
        problems.append("payload has no speedup_at_4 (no 4-shard point?)")
    elif sp < required:
        problems.append(
            f"4-shard speedup {sp}x is below the floor {required:.2f}x "
            f"({min_speedup}x scaled by min(4, {cpus} cpu(s))/4)")
    return problems


def check_serve(path: str, min_clients: int) -> list[str]:
    """Validate a ``repro.bench serve`` payload (schema + invariants)."""
    obs = _import_obs()
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    try:
        obs.validate_service_report(payload)
    except ValueError as e:
        print(f"error: {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    problems = []
    if payload["clients"] < min_clients:
        problems.append(
            f"load phase ran {payload['clients']} client(s), below the "
            f"{min_clients}-client floor — no concurrency was exercised"
        )
    chaos = payload["chaos"]
    if not chaos.get("breaker_opened", False):
        problems.append("chaos phase never opened the circuit breaker")
    breaker = payload["breaker"]
    if not breaker.get("closes"):
        problems.append(
            "the breaker never closed again — the half-open probe path "
            "was not exercised"
        )
    if chaos.get("countable", 0) < 1:
        problems.append("chaos phase produced no countable responses")
    return problems


def check_dynamic(path: str, min_speedup: float) -> list[str]:
    """Validate a ``repro.bench dynamic`` payload (identity + small-batch
    speedup floor)."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    if payload.get("experiment") != "dynamic" or "workloads" not in payload:
        print(f"error: {path} is not a dynamic bench payload", file=sys.stderr)
        raise SystemExit(2)
    problems = []
    small_max = payload.get("small_batch_max", 4)
    small = 0
    for w in payload["workloads"]:
        where = f"{w['key']}@{w.get('batch_size')}edits"
        if not w.get("identical_counts", False):
            problems.append(
                f"{where}: incremental delta disagrees with the full recount")
        if w.get("anchor_runs", 0) < 1:
            problems.append(f"{where}: no anchored launches recorded")
        small += w.get("batch_size", small_max + 1) <= small_max
    if not small:
        problems.append(
            f"payload has no small-batch cells (<= {small_max} edits) — "
            "nothing feeds the gate")
    gm = payload.get("geomean_speedup_small_batch")
    if gm is None:
        problems.append("payload has no geomean_speedup_small_batch")
    elif gm < min_speedup:
        problems.append(
            f"small-batch geomean speedup {gm}× is below the "
            f"{min_speedup}× floor — delta exploration no longer beats "
            f"a full recount")
    return problems


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("baseline", help="baseline JSON (or the only file to validate)")
    p.add_argument("current", nargs="?", default=None,
                   help="current JSON to compare against the baseline")
    p.add_argument("--threshold", type=float, default=0.20,
                   help="allowed fractional slowdown per workload (default 0.20)")
    p.add_argument("--min-speedup", type=float, default=3.0,
                   help="required geomean speedup in the current file "
                        "(default 3.0; pass 0 to disable)")
    p.add_argument("--profile", action="store_true",
                   help="treat the file as a BENCH_profile.json payload and "
                        "validate it against the repro.obs schema")
    p.add_argument("--min-profile-speedup", type=float, default=1.0,
                   help="profile mode: required full-over-baseline speedup "
                        "per query (default 1.0)")
    p.add_argument("--codegen", action="store_true",
                   help="treat the file as a BENCH_codegen.json payload: "
                        "check interp/codegen identity per cell and the "
                        "dense-cell geomean speedup floor")
    p.add_argument("--min-codegen-speedup", type=float, default=2.0,
                   help="codegen mode: required geomean speedup over the "
                        "dense cells (default 2.0)")
    p.add_argument("--parallel", action="store_true",
                   help="treat the file as a BENCH_parallel.json payload: "
                        "check serial/process identity per point and the "
                        "4-worker geomean floor (scaled by the recording "
                        "host's cpu_count)")
    p.add_argument("--min-parallel-speedup", type=float, default=2.5,
                   help="parallel mode: required geomean speedup at 4 "
                        "workers on a >= 4-core host (default 2.5); scaled "
                        "down by min(4, cpu_count)/4 on smaller hosts")
    p.add_argument("--scale", action="store_true",
                   help="treat the file as a BENCH_scale.json payload: "
                        "check memmap/materialized identity + the peak-RSS "
                        "ceiling and the 4-shard speedup floor (scaled by "
                        "the recording host's cpu_count)")
    p.add_argument("--max-rss-ratio", type=float, default=0.5,
                   help="scale mode: ceiling on memmap-over-materialized "
                        "peak-RSS delta (default 0.5)")
    p.add_argument("--min-scale-speedup", type=float, default=2.0,
                   help="scale mode: required 4-shard speedup on a >= "
                        "4-core host (default 2.0); scaled down by "
                        "min(4, cpu_count)/4 on smaller hosts")
    p.add_argument("--dynamic", action="store_true",
                   help="treat the file as a BENCH_dynamic.json payload: "
                        "check incremental-vs-recount identity per cell and "
                        "the small-batch geomean speedup floor")
    p.add_argument("--min-dynamic-speedup", type=float, default=3.0,
                   help="dynamic mode: required geomean speedup of "
                        "incremental deltas over full recounts on "
                        "small batches (default 3.0)")
    p.add_argument("--serve", action="store_true",
                   help="treat the file as a BENCH_serve.json payload: "
                        "validate the service schema, identity/accounting "
                        "invariants and the breaker lifecycle")
    p.add_argument("--min-clients", type=int, default=4,
                   help="serve mode: minimum concurrent clients the load "
                        "phase must have run (default 4)")
    args = p.parse_args(argv)

    if args.scale:
        if args.current is not None:
            p.error("--scale takes a single file")
        problems = check_scale(args.baseline, args.max_rss_ratio,
                               args.min_scale_speedup)
        if problems:
            for msg in problems:
                print(f"FAIL: {msg}", file=sys.stderr)
            return 1
        with open(args.baseline) as fh:
            payload = json.load(fh)
        rss, part = payload["rss"], payload["partition"]
        print(f"ok: scale payload valid — memmap peak-RSS delta "
              f"{rss['ratio']}x of materialized "
              f"({rss['store_bytes'] >> 20} MB store), 4-shard speedup "
              f"{part.get('speedup_at_4')}x on "
              f"{payload.get('cpu_count')} cpu(s), identity "
              f"invariants hold")
        return 0

    if args.serve:
        if args.current is not None:
            p.error("--serve takes a single file")
        problems = check_serve(args.baseline, args.min_clients)
        if problems:
            for msg in problems:
                print(f"FAIL: {msg}", file=sys.stderr)
            return 1
        with open(args.baseline) as fh:
            payload = json.load(fh)
        r = payload["requests"]
        print(f"ok: serve payload valid — {r['total']} request(s) at "
              f"{payload['clients']} client(s), {r['ok']} served / "
              f"{r['shed']} shed / {r['degraded']} degraded, p50 "
              f"{payload['latency_ms']['p50']:.2f} ms, p99 "
              f"{payload['latency_ms']['p99']:.2f} ms, breaker "
              f"opened+closed, identity and accounting invariants hold")
        return 0

    if args.dynamic:
        if args.current is not None:
            p.error("--dynamic takes a single file")
        problems = check_dynamic(args.baseline, args.min_dynamic_speedup)
        if problems:
            for msg in problems:
                print(f"FAIL: {msg}", file=sys.stderr)
            return 1
        with open(args.baseline) as fh:
            payload = json.load(fh)
        print(f"ok: dynamic payload valid, {len(payload['workloads'])} "
              f"cell(s), small-batch geomean speedup "
              f"{payload.get('geomean_speedup_small_batch')}×, "
              f"incremental counts identical to full recounts")
        return 0

    if args.codegen:
        if args.current is not None:
            p.error("--codegen takes a single file")
        problems = check_codegen(args.baseline, args.min_codegen_speedup)
        if problems:
            for msg in problems:
                print(f"FAIL: {msg}", file=sys.stderr)
            return 1
        with open(args.baseline) as fh:
            payload = json.load(fh)
        ndense = sum(bool(w.get("dense")) for w in payload["workloads"])
        print(f"ok: codegen payload valid, {len(payload['workloads'])} "
              f"cell(s) ({ndense} dense), dense geomean speedup "
              f"{payload.get('geomean_speedup_dense')}×, identity "
              f"invariants hold")
        return 0

    if args.parallel:
        if args.current is not None:
            p.error("--parallel takes a single file")
        problems = check_parallel(args.baseline, args.min_parallel_speedup)
        if problems:
            for msg in problems:
                print(f"FAIL: {msg}", file=sys.stderr)
            return 1
        with open(args.baseline) as fh:
            payload = json.load(fh)
        print(f"ok: parallel payload valid, "
              f"{len(payload['workloads'])} workload(s), geomean 4-worker "
              f"speedup {payload.get('geomean_speedup_at_4')}× on "
              f"{payload.get('cpu_count')} cpu(s), identity invariants hold")
        return 0

    if args.profile:
        if args.current is not None:
            p.error("--profile takes a single file")
        problems = check_profile(args.baseline, args.min_profile_speedup)
        if problems:
            for msg in problems:
                print(f"FAIL: {msg}", file=sys.stderr)
            return 1
        with open(args.baseline) as fh:
            nq = len(json.load(fh)["queries"])
        print(f"ok: profile payload valid, {nq} queries, identity and "
              f"speedup invariants hold")
        return 0

    min_speedup = args.min_speedup if args.min_speedup > 0 else None
    if args.current is None:
        current = load(args.baseline)
        problems = check_invariants(current, min_speedup)
    else:
        baseline = load(args.baseline)
        current = load(args.current)
        problems = check_invariants(current, min_speedup)
        problems += check_regressions(baseline, current, args.threshold)

    if problems:
        for msg in problems:
            print(f"FAIL: {msg}", file=sys.stderr)
        return 1
    n = len(current["workloads"])
    print(f"ok: {n} workload(s), geomean speedup "
          f"{current.get('geomean_speedup')}×, identity invariants hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
