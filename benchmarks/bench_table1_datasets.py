"""Table I — dataset statistics of the stand-in graphs."""

from repro.bench import table1_datasets


def test_table1(benchmark, save_result):
    res = benchmark.pedantic(
        table1_datasets, kwargs={"scale": "small"}, iterations=1, rounds=1
    )
    save_result("table1_datasets", res.rendered)
    # Table I sanity: the loop-unrolling motivation (median degree < 32)
    # must hold on every stand-in
    assert all(s.median_degree < 32 for s in res.data.values())
    # and degree skew must be present (work-stealing motivation)
    assert all(s.max_degree > 4 * max(s.median_degree, 1) for s in res.data.values())
