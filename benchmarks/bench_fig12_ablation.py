"""Fig. 12 — work-stealing and unrolling ablation + code-motion note.

Paper shape: local stealing ≥2× on almost all cases; global stealing
adds 1.1–2× on large skewed graphs and is ≈neutral on small ones;
unrolling adds 1.1–2.6×; occupancy tracks the speedups; disabling code
motion slows the naive engine ~3×.
"""

import os

from repro.bench import codemotion_ablation, fig12_ablation

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"


def test_fig12(benchmark, save_result):
    queries = ["q5", "q7", "q13"] if FULL else ["q5", "q7"]
    res = benchmark.pedantic(
        fig12_ablation,
        kwargs={"queries": queries, "budget": None},
        iterations=1,
        rounds=1,
    )
    save_result("fig12_ablation", res.rendered)
    # every cell: each variant counts the same matches
    assert res.consistent()
    # aggregate direction: full config beats naive on every workload
    for cell in res.cells:
        naive = cell.results["naive"]
        full = cell.results["unroll+local+globalsteal"]
        assert full.sim_ms <= naive.sim_ms * 1.05, cell.workload_key
    # local stealing alone already helps on most workloads
    helped = sum(
        1 for c in res.cells
        if c.results["localsteal"].sim_ms < c.results["naive"].sim_ms
    )
    assert helped >= len(res.cells) / 2


def test_codemotion(benchmark, save_result):
    res = benchmark.pedantic(
        codemotion_ablation, kwargs={"budget": 2_000_000}, iterations=1, rounds=1
    )
    save_result("codemotion_ablation", res.rendered)
    slowdowns = [slow for (_, _, slow) in res.data.values()]
    # paper: "about 3x slower" without motion; demand >1.2x on average
    assert sum(slowdowns) / len(slowdowns) > 1.2
