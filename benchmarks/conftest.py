"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures via the
experiment drivers in :mod:`repro.bench.experiments`, saves the
rendered output under ``benchmarks/results/`` and prints it (run pytest
with ``-s`` to see tables inline).

Scope control: by default the grids run on the ``tiny`` dataset scale
with a per-cell match budget, keeping the whole suite to minutes of
pure-Python simulation.  Set ``REPRO_BENCH_FULL=1`` for the full
24-query grid at the paper-shaped ``small`` scale (much slower).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

# representative per-size subsets used in quick mode: the cuTS-covered
# queries (q7/q15/q23), the cliques (q8/q16/q24) and a sparse + a dense
# pick per size
QUICK_QUERIES = ["q5", "q7", "q8", "q13", "q15", "q16", "q23", "q24"]
QUICK_BUDGET = 2_000_000
FULL_BUDGET = 4_000_000


@pytest.fixture(scope="session")
def bench_queries() -> list[str]:
    if FULL:
        from repro.bench import queries_for_table2

        return queries_for_table2()
    return QUICK_QUERIES


@pytest.fixture(scope="session")
def bench_budget() -> int:
    return FULL_BUDGET if FULL else QUICK_BUDGET


@pytest.fixture(scope="session")
def bench_scale() -> str | None:
    # None = per-query-size default (small for ≤6, tiny for size 7)
    return None


@pytest.fixture(scope="session", autouse=True)
def verify_all_plans():
    """Statically verify every plan the benchmark drivers compile.

    Same hook as the unit-test suite (see ``tests/conftest.py``): any
    ERROR-severity diagnostic from :mod:`repro.analysis.verify` fails
    the benchmark that built the offending plan.
    """
    from repro.analysis.verify import verify_plan
    from repro.pattern.plan import add_plan_observer, remove_plan_observer

    def _verify(plan) -> None:
        verify_plan(plan).raise_if_errors()

    add_plan_observer(_verify)
    try:
        yield
    finally:
        remove_plan_observer(_verify)


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, rendered: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(rendered + "\n", encoding="utf-8")
        print(f"\n{rendered}\n[saved to {path}]")

    return _save
