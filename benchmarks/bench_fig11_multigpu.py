"""Fig. 11 — multi-GPU scaling of labeled and unlabeled queries.

Paper shape: 2 and 4 GPUs speed up q9–q16 on the large graphs,
sub-linearly where the static root split is skewed.
"""

import os

from repro.bench import fig11_multigpu

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"


def test_fig11_unlabeled(benchmark, save_result):
    queries = ["q7", "q13", "q16"] if FULL else ["q7", "q16"]
    datasets = ["mico", "livejournal"] if FULL else ["mico"]
    res = benchmark.pedantic(
        fig11_multigpu,
        kwargs={"datasets": datasets, "queries": queries,
                "budget": None, "labeled": False},
        iterations=1,
        rounds=1,
    )
    save_result("fig11_multigpu_unlabeled", res.rendered)
    # scaling sanity: 4 GPUs never slower than 1 by more than noise,
    # and at least one workload must scale meaningfully
    sp4 = [v for (ds, qn, nd), v in res.data.items() if nd == 4]
    assert sp4
    # hub subtrees dominate the tiny stand-ins harder than real SNAP
    # graphs, so demand modest-but-real scaling and no regression
    assert max(sp4) > 1.2
    assert min(sp4) > 0.9


def test_fig11_labeled(benchmark, save_result):
    res = benchmark.pedantic(
        fig11_multigpu,
        kwargs={"datasets": ["mico"], "queries": ["q13", "q16"],
                "budget": None, "labeled": True},
        iterations=1,
        rounds=1,
    )
    save_result("fig11_multigpu_labeled", res.rendered)
    sp2 = [v for (ds, qn, nd), v in res.data.items() if nd == 2]
    assert sp2 and min(sp2) > 0.8
