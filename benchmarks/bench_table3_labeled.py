"""Table III — labeled edge-induced: STMatch vs GSI vs Dryadic.

Paper shape: STMatch beats GSI everywhere it runs (24–991×) and
Dryadic (1.4–898×); GSI OOMs on the denser/bigger graphs; speedups grow
with graph size.
"""

from repro.bench import table3_labeled
from repro.bench.tables import geomean


def test_table3(benchmark, save_result, bench_queries, bench_budget, bench_scale):
    res = benchmark.pedantic(
        table3_labeled,
        kwargs={"queries": bench_queries, "budget": bench_budget, "scale": bench_scale},
        iterations=1,
        rounds=1,
    )
    save_result("table3_labeled", res.rendered)
    assert res.consistent(), "systems disagree on match counts"
    sp_gsi = res.data["speedups"].get("gsi", [])
    if sp_gsi:
        assert geomean(sp_gsi) > 1.5, f"vs gsi: {geomean(sp_gsi):.2f}x"
