"""Design-choice ablation: split vs merged labeled intermediate sets.

Sec. VII / Fig. 10: Dryadic's labeled code motion splits intermediate
sets per label (≥ n(n-1)/2 sets), which would overflow GPU shared
memory once ``Csize`` is kept for every set of every unrolled iteration
of every resident warp; STMatch merges the per-label copies into
multi-label sets.  This bench quantifies both layouts' shared-memory
footprints and the resident-warp limit they imply on a paper-shaped
block (48 KB shared memory, 32 warps/block, UNROLL=8).
"""

from repro.bench.tables import TextTable
from repro.codemotion import (
    motioned_program,
    shared_memory_footprint,
    split_labeled_program,
)
from repro.pattern import get_query

SHARED_PER_BLOCK = 48 * 1024
WARPS_PER_BLOCK = 32


def _labeled(name: str, num_labels: int = 10):
    q = get_query(name)
    labels = [i % num_labels for i in range(q.size)]
    return q.with_labels(labels)


def render_table() -> TextTable:
    t = TextTable(
        title="Labeled set layout: split (Fig. 10a) vs merged (Fig. 10b)",
        columns=["query", "sets merged", "sets split", "bytes/warp merged",
                 "bytes/warp split", "warps/block merged", "warps/block split"],
    )
    for name in ["q5", "q8", "q13", "q16", "q22", "q24"]:
        q = _labeled(name)
        merged = motioned_program(q, vertex_induced=True)
        split = split_labeled_program(merged, q)
        fp_m = shared_memory_footprint(merged, unroll=8)
        fp_s = shared_memory_footprint(split, unroll=8)
        warps_m = SHARED_PER_BLOCK // max(fp_m.total_bytes, 1)
        warps_s = SHARED_PER_BLOCK // max(fp_s.total_bytes, 1)
        t.add_row(name, merged.num_sets, split.num_sets,
                  fp_m.total_bytes, fp_s.total_bytes,
                  min(warps_m, WARPS_PER_BLOCK), min(warps_s, WARPS_PER_BLOCK))
    t.add_note("48 KB shared memory per block; Csize/iter/uiter per warp at "
               "UNROLL=8; fewer resident warps = lower occupancy")
    return t


def test_label_merging(benchmark, save_result):
    table = benchmark.pedantic(render_table, iterations=1, rounds=1)
    save_result("label_merging_ablation", table.render())
    # the merged layout must never need more sets or bytes than split,
    # and must strictly win on the larger queries
    rows = {r[0]: r for r in table.rows}
    for name, row in rows.items():
        assert int(row[1]) <= int(row[2]), name
        assert int(row[3]) <= int(row[4]), name
    assert int(rows["q24"][2]) > int(rows["q24"][1]), "size-7 should split more"
