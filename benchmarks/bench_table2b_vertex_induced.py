"""Table II(b) — unlabeled vertex-induced: STMatch vs Dryadic.

Paper shape: STMatch outperforms Dryadic on all testcases (max 30×,
average 6× on their hardware).
"""

from repro.bench import table2b_vertex_induced
from repro.bench.tables import geomean


def test_table2b(benchmark, save_result, bench_queries, bench_budget, bench_scale):
    res = benchmark.pedantic(
        table2b_vertex_induced,
        kwargs={"queries": bench_queries, "budget": bench_budget, "scale": bench_scale},
        iterations=1,
        rounds=1,
    )
    save_result("table2b_vertex_induced", res.rendered)
    assert res.consistent(), "systems disagree on match counts"
    sp_dry = res.data["speedups"].get("dryadic", [])
    if sp_dry:
        assert geomean(sp_dry) > 1.0, f"vs dryadic: {geomean(sp_dry):.2f}x"
