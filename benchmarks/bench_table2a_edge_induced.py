"""Table II(a) — unlabeled edge-induced: STMatch vs cuTS vs Dryadic.

Paper shape to reproduce: STMatch wins every runnable cell; Dryadic
beats cuTS; cuTS fails (OOM) on MiCo's heavier queries; the deepest
sparse queries exceed the budget ('−', the paper's 8-hour timeouts).
"""

from repro.bench import table2a_edge_induced
from repro.bench.tables import geomean


def test_table2a(benchmark, save_result, bench_queries, bench_budget, bench_scale):
    res = benchmark.pedantic(
        table2a_edge_induced,
        kwargs={"queries": bench_queries, "budget": bench_budget, "scale": bench_scale},
        iterations=1,
        rounds=1,
    )
    save_result("table2a_edge_induced", res.rendered)
    assert res.consistent(), "systems disagree on match counts"
    sp_cuts = res.data["speedups"].get("cuts", [])
    sp_dry = res.data["speedups"].get("dryadic", [])
    # STMatch must win against both baselines in aggregate
    if sp_cuts:
        assert geomean(sp_cuts) > 1.5, f"vs cuts: {geomean(sp_cuts):.2f}x"
    if sp_dry:
        assert geomean(sp_dry) > 1.0, f"vs dryadic: {geomean(sp_dry):.2f}x"
