"""Fig. 13 — intra-warp thread utilization vs unrolling size.

Paper shape: utilization rises monotonically with the unrolling size
because candidate sets are bounded by vertex degree and median degrees
are far below the warp width (Table I).
"""

from repro.bench import fig13_unroll_utilization


def test_fig13(benchmark, save_result, bench_budget):
    res = benchmark.pedantic(
        fig13_unroll_utilization,
        kwargs={"budget": bench_budget},
        iterations=1,
        rounds=1,
    )
    save_result("fig13_unroll_utilization", res.rendered)
    # monotone non-decreasing utilization per query
    by_query: dict[str, list[tuple[int, float]]] = {}
    for (qn, u), util in res.data.items():
        by_query.setdefault(qn, []).append((u, util))
    for qn, pts in by_query.items():
        pts.sort()
        utils = [u for _, u in pts]
        assert all(b >= a - 0.02 for a, b in zip(utils, utils[1:])), (qn, utils)
        # unroll 8 must be a real improvement over no unrolling
        assert utils[-1] > utils[0] * 1.2, (qn, utils)
